use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use infilter_net::{Asn, Prefix};
use serde::{Deserialize, Serialize};

/// One line of a `show ip bgp` table: a path some collector feed reported
/// for a prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DumpEntry {
    /// The advertised prefix.
    pub prefix: Prefix,
    /// The feed's next-hop address (cosmetic; the analysis uses AS paths).
    pub next_hop: Ipv4Addr,
    /// AS path from the feed AS (first element) to the origin AS (last).
    pub as_path: Vec<Asn>,
    /// Whether the collector marked this path best (`*>`).
    pub best: bool,
}

/// A Routeviews-style `show ip bgp` snapshot for one or more prefixes of a
/// target network.
///
/// # Examples
///
/// ```
/// use infilter_bgp::BgpDump;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "\
/// *  4.0.0.0/8        141.142.12.1        1224 38 10514 3356 1 i
/// *> 4.2.101.0/24     141.142.12.1        1224 38 6325 1 i
/// ";
/// let dump = BgpDump::parse(text)?;
/// assert_eq!(dump.entries.len(), 2);
/// let rendered = dump.render();
/// let reparsed = BgpDump::parse(&rendered)?;
/// assert_eq!(dump, reparsed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpDump {
    /// The table rows.
    pub entries: Vec<DumpEntry>,
}

impl BgpDump {
    /// Renders the snapshot in `show ip bgp` layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let marker = if e.best { "*>" } else { "* " };
            let path = e
                .as_path
                .iter()
                .map(|a| a.0.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{marker} {:<16} {:<19} {path} i\n",
                e.prefix.to_string(),
                e.next_hop.to_string(),
            ));
        }
        out
    }

    /// Parses `show ip bgp` text. Blank lines and lines starting with
    /// anything other than `*` are skipped (headers, "(some lines deleted)").
    ///
    /// # Errors
    ///
    /// Returns [`ParseDumpError`] when a table row is malformed.
    pub fn parse(text: &str) -> Result<BgpDump, ParseDumpError> {
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if !line.starts_with('*') {
                continue;
            }
            let best = line.starts_with("*>");
            let rest = line.trim_start_matches("*>").trim_start_matches('*').trim();
            let mut fields = rest.split_whitespace();
            let prefix_str = fields
                .next()
                .ok_or_else(|| ParseDumpError::new(lineno, "missing prefix"))?;
            let prefix = Prefix::from_str(prefix_str)
                .map_err(|e| ParseDumpError::new(lineno, format!("bad prefix: {e}")))?;
            let next_hop_str = fields
                .next()
                .ok_or_else(|| ParseDumpError::new(lineno, "missing next hop"))?;
            let next_hop: Ipv4Addr = next_hop_str
                .parse()
                .map_err(|_| ParseDumpError::new(lineno, "bad next hop"))?;
            let mut as_path = Vec::new();
            for f in fields {
                if f == "i" || f == "e" || f == "?" {
                    break;
                }
                let asn: u32 = f
                    .parse()
                    .map_err(|_| ParseDumpError::new(lineno, format!("bad ASN `{f}`")))?;
                as_path.push(Asn(asn));
            }
            entries.push(DumpEntry {
                prefix,
                next_hop,
                as_path,
                best,
            });
        }
        Ok(BgpDump { entries })
    }

    /// All distinct prefixes appearing in the dump.
    pub fn prefixes(&self) -> Vec<Prefix> {
        let mut v: Vec<Prefix> = self.entries.iter().map(|e| e.prefix).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Entries advertising the given prefix.
    pub fn entries_for(&self, prefix: Prefix) -> impl Iterator<Item = &DumpEntry> {
        self.entries.iter().filter(move |e| e.prefix == prefix)
    }
}

/// Error from [`BgpDump::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDumpError {
    line: usize,
    message: String,
}

impl ParseDumpError {
    fn new(line: usize, message: impl Into<String>) -> ParseDumpError {
        ParseDumpError {
            line,
            message: message.into(),
        }
    }

    /// Zero-based line number of the offending row.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDumpError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact sample from the paper's §3.2.
    const PAPER_SAMPLE: &str = "\
Network          Next Hop            Path
* 4.0.0.0        193.0.0.56          3333 9057 3356 1 i
* 4.0.0.0        217.75.96.60        16150 8434 286 1 i
* 4.0.0.0        141.142.12.1        1224 38 10514 3356 1 i
* 4.2.101.0/24   141.142.12.1        1224 38 6325 1 i
* 4.2.101.0/24   202.249.2.86        7500 2497 1 i
* 4.2.101.0/24   203.194.0.5         9942 1 i
* 4.2.101.0/24   66.203.205.62       852 1 i
* 4.2.101.0/24   167.142.3.6         5056 1 e
* 4.2.101.0/24   206.220.240.95      10764 1 i
* 4.2.101.0/24   157.130.182.254     19092 1 i
* 4.2.101.0/24   203.62.252.26       1221 4637 1 i
* 4.2.101.0/24   202.232.1.91        2497 1 i
";

    #[test]
    fn parses_paper_sample() {
        let dump = BgpDump::parse(PAPER_SAMPLE).unwrap();
        assert_eq!(dump.entries.len(), 12);
        let first = &dump.entries[0];
        assert_eq!(first.prefix, "4.0.0.0/32".parse().unwrap()); // bare address → host
        assert_eq!(first.as_path, vec![Asn(3333), Asn(9057), Asn(3356), Asn(1)]);
        assert!(!first.best);
        // The `e` (EGP) origin line still parses.
        let egp = &dump.entries[7];
        assert_eq!(egp.as_path, vec![Asn(5056), Asn(1)]);
    }

    #[test]
    fn render_parse_round_trip() {
        let dump = BgpDump {
            entries: vec![
                DumpEntry {
                    prefix: "4.0.0.0/8".parse().unwrap(),
                    next_hop: "141.142.12.1".parse().unwrap(),
                    as_path: vec![Asn(1224), Asn(38), Asn(10514), Asn(3356), Asn(1)],
                    best: false,
                },
                DumpEntry {
                    prefix: "4.2.101.0/24".parse().unwrap(),
                    next_hop: "4.2.4.90".parse().unwrap(),
                    as_path: vec![Asn(1)],
                    best: true,
                },
            ],
        };
        let text = dump.render();
        assert_eq!(BgpDump::parse(&text).unwrap(), dump);
    }

    #[test]
    fn skips_headers_and_commentary() {
        let text =
            "Network Next Hop Path\n.... (some lines deleted)\n* 9.0.0.0/8 1.2.3.4 10 20 i\n\n";
        let dump = BgpDump::parse(text).unwrap();
        assert_eq!(dump.entries.len(), 1);
        assert_eq!(dump.entries[0].as_path, vec![Asn(10), Asn(20)]);
    }

    #[test]
    fn reports_malformed_rows() {
        let err = BgpDump::parse("* notaprefix 1.2.3.4 10 i").unwrap_err();
        assert_eq!(err.line(), 0);
        assert!(err.to_string().contains("bad prefix"));

        let err = BgpDump::parse("* 9.0.0.0/8 nothost 10 i").unwrap_err();
        assert!(err.to_string().contains("bad next hop"));

        let err = BgpDump::parse("* 9.0.0.0/8 1.2.3.4 10 abc 20 i").unwrap_err();
        assert!(err.to_string().contains("bad ASN"));

        let err = BgpDump::parse("*").unwrap_err();
        assert!(err.to_string().contains("missing prefix"));
    }

    #[test]
    fn prefixes_are_deduped_and_sorted() {
        let text = "\
* 9.0.0.0/8 1.2.3.4 10 i
* 4.0.0.0/8 1.2.3.4 11 i
* 9.0.0.0/8 5.6.7.8 12 i
";
        let dump = BgpDump::parse(text).unwrap();
        let p = dump.prefixes();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], "4.0.0.0/8".parse().unwrap());
        assert_eq!(dump.entries_for(p[1]).count(), 2);
    }
}
