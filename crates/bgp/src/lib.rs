//! BGP-derived validation of the InFilter hypothesis (paper §3.2).
//!
//! The paper's second validation study downloads Routeviews `show ip bgp`
//! snapshots every two hours for 30 days and, for each of 20 target
//! networks, derives the mapping *peer AS → set of source ASes* — which
//! neighbour of the target network traffic from every source AS would use to
//! enter it. The reported result (its Figure 5): the source-AS set changes
//! by 1.6 % on average (5 % max) between successive snapshots, growing with
//! the number of peer ASes.
//!
//! This crate rebuilds that pipeline over the synthetic Internet:
//!
//! * [`BgpDump`] renders and parses Routeviews-style `show ip bgp` text so
//!   the analysis runs on the same textual artifact the paper scraped;
//! * [`PeerMapping`] extracts the peer-AS → source-AS-set mapping either
//!   directly from a routing table or from a dump, honouring most-specific
//!   prefix semantics (the paper's `4.2.101.0/24` vs `4.0.0.0/8` example);
//! * [`LinkChurn`] drives Poisson link failure/repair so successive
//!   snapshots differ realistically;
//! * [`BgpValidation`] runs the full 30-day campaign and emits the
//!   Figure 5 series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod dump;
mod mapping;
mod validation;

pub use churn::LinkChurn;
pub use dump::{BgpDump, DumpEntry, ParseDumpError};
pub use mapping::PeerMapping;
pub use validation::{BgpSimConfig, BgpValidation, TargetSeries, ValidationReport};
