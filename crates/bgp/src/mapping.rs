use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use infilter_net::Asn;
use infilter_topology::{AsGraph, RouteTable};
use serde::{Deserialize, Serialize};

use crate::BgpDump;

/// The mapping the InFilter hypothesis is about: for one target network,
/// which **peer AS** does traffic from each **source AS** use to enter it.
///
/// Built either directly from routing state ([`PeerMapping::from_routes`])
/// or from `show ip bgp` text the way the paper derives it
/// ([`PeerMapping::from_dump`]): every suffix of an advertised path is the
/// best path of the AS where the suffix starts, and the path element
/// adjacent to the origin is that source's peer AS. Most-specific prefixes
/// win when a source appears on paths for several prefixes.
///
/// # Examples
///
/// ```
/// use infilter_bgp::{BgpDump, PeerMapping};
/// use infilter_net::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "\
/// *  4.0.0.0/8        141.142.12.1   1224 38 10514 3356 1 i
/// *  4.2.101.0/24     141.142.12.1   1224 38 6325 1 i
/// ";
/// let dump = BgpDump::parse(text)?;
/// let mapping = PeerMapping::from_dump(&dump, "4.2.101.20".parse()?);
/// // The paper: "AS 6325 will be used by traffic from AS 1224 and AS 38"
/// // because 4.2.101.0/24 is more specific than 4.0.0.0/8.
/// assert_eq!(mapping.peer_of(Asn(1224)), Some(Asn(6325)));
/// assert_eq!(mapping.peer_of(Asn(38)), Some(Asn(6325)));
/// assert_eq!(mapping.peer_of(Asn(10514)), Some(Asn(3356)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerMapping {
    map: BTreeMap<Asn, BTreeSet<Asn>>,
    source_to_peer: BTreeMap<Asn, Asn>,
}

impl PeerMapping {
    /// Builds the mapping from a per-destination routing table: every AS
    /// with a route is a source AS; its peer is the AS adjacent to the
    /// destination on its path.
    pub fn from_routes(table: &RouteTable) -> PeerMapping {
        let mut m = PeerMapping::default();
        for (asn, _) in table.iter() {
            if asn == table.destination() {
                continue;
            }
            // Direct neighbours are themselves the ingress peer and are kept
            // (the EIA machinery needs traffic *from* a peer AS to map to
            // that peer AS).
            if let Some(peer) = table.ingress_peer(asn) {
                m.insert(peer, asn);
            }
        }
        m
    }

    /// Builds the mapping from `show ip bgp` text for the target reached at
    /// `target_addr`, following the paper's §3.2 derivation. Only entries
    /// whose prefix contains `target_addr` participate; among those, a
    /// source AS appearing under several prefixes keeps the assignment from
    /// the most specific one.
    pub fn from_dump(dump: &BgpDump, target_addr: Ipv4Addr) -> PeerMapping {
        // source AS -> (prefix length, peer AS); longer prefix wins.
        let mut best: BTreeMap<Asn, (u8, Asn)> = BTreeMap::new();
        for e in &dump.entries {
            if !e.prefix.contains(target_addr) || e.as_path.len() < 2 {
                continue;
            }
            let origin = *e.as_path.last().expect("len >= 2");
            let peer_for_suffix = e.as_path[e.as_path.len() - 2];
            // Every AS on the path is a source whose best path is the
            // corresponding suffix; all suffixes of one line share the same
            // origin-adjacent AS. The paper's tables exclude the peer AS
            // itself (and the origin) from the source sets, so we do too.
            for &source in &e.as_path[..e.as_path.len() - 1] {
                if source == origin || source == peer_for_suffix {
                    continue;
                }
                let cand = (e.prefix.len(), peer_for_suffix);
                match best.get(&source) {
                    Some(&(len, _)) if len >= e.prefix.len() => {}
                    _ => {
                        best.insert(source, cand);
                    }
                }
            }
        }
        let mut m = PeerMapping::default();
        for (source, (_, peer)) in best {
            m.insert(peer, source);
        }
        m
    }

    /// Builds per-address mappings honouring prefix-level origins in the
    /// graph: useful when a more specific prefix of the target network is
    /// originated elsewhere. `tables` maps origin AS → routing table.
    pub fn for_address(
        graph: &AsGraph,
        tables: &BTreeMap<Asn, RouteTable>,
        addr: Ipv4Addr,
    ) -> Option<PeerMapping> {
        let (origin, _) = graph.originator_of(addr)?;
        tables.get(&origin).map(PeerMapping::from_routes)
    }

    fn insert(&mut self, peer: Asn, source: Asn) {
        self.map.entry(peer).or_default().insert(source);
        self.source_to_peer.insert(source, peer);
    }

    /// The peer AS assigned to `source`, if known.
    pub fn peer_of(&self, source: Asn) -> Option<Asn> {
        self.source_to_peer.get(&source).copied()
    }

    /// The source-AS set of `peer`.
    pub fn sources_of(&self, peer: Asn) -> Option<&BTreeSet<Asn>> {
        self.map.get(&peer)
    }

    /// Number of distinct peer ASes in the mapping.
    pub fn peer_count(&self) -> usize {
        self.map.len()
    }

    /// Number of source ASes covered.
    pub fn source_count(&self) -> usize {
        self.source_to_peer.len()
    }

    /// Iterates over `(peer, source set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, &BTreeSet<Asn>)> {
        self.map.iter().map(|(p, s)| (*p, s))
    }

    /// The paper's Figure 5 metric: the fraction of source ASes present in
    /// both mappings whose peer-AS assignment differs. Zero when the
    /// mappings share no sources.
    pub fn fractional_change(&self, later: &PeerMapping) -> f64 {
        let mut common = 0usize;
        let mut changed = 0usize;
        for (source, peer) in &self.source_to_peer {
            if let Some(new_peer) = later.source_to_peer.get(source) {
                common += 1;
                if new_peer != peer {
                    changed += 1;
                }
            }
        }
        if common == 0 {
            0.0
        } else {
            changed as f64 / common as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infilter_topology::InternetBuilder;

    #[test]
    fn paper_target_as1_mapping_from_dump() {
        // Full example from §3.2 (target 4.2.101.20 in AS 1's network).
        let text = "\
* 4.0.0.0/8      193.0.0.56          3333 9057 3356 1 i
* 4.0.0.0/8      217.75.96.60        16150 8434 286 1 i
* 4.0.0.0/8      141.142.12.1        1224 38 10514 3356 1 i
* 4.2.101.0/24   141.142.12.1        1224 38 6325 1 i
* 4.2.101.0/24   202.249.2.86        7500 2497 1 i
* 4.2.101.0/24   203.62.252.26       1221 4637 1 i
";
        let dump = BgpDump::parse(text).unwrap();
        let m = PeerMapping::from_dump(&dump, "4.2.101.20".parse().unwrap());
        // Expected mapping from the paper (restricted to these lines):
        //   3356 ← {3333, 9057, 10514}
        //   286  ← {16150, 8434}
        //   6325 ← {1224, 38}
        //   2497 ← {7500}
        //   4637 ← {1221}
        let expect = [
            (3356, vec![3333, 9057, 10514]),
            (286, vec![16150, 8434]),
            (6325, vec![1224, 38]),
            (2497, vec![7500]),
            (4637, vec![1221]),
        ];
        assert_eq!(m.peer_count(), expect.len());
        for (peer, sources) in expect {
            let got = m
                .sources_of(Asn(peer))
                .unwrap_or_else(|| panic!("peer AS{peer} missing; mapping: {m:?}"));
            let want: BTreeSet<Asn> = sources.into_iter().map(Asn).collect();
            assert_eq!(*got, want, "peer AS{peer}");
        }
    }

    #[test]
    fn dump_for_address_outside_specific_prefix_uses_coarse() {
        let text = "\
* 4.0.0.0/8      141.142.12.1        1224 38 10514 3356 1 i
* 4.2.101.0/24   141.142.12.1        1224 38 6325 1 i
";
        let dump = BgpDump::parse(text).unwrap();
        // 4.9.9.9 is outside the /24, so only the /8 applies.
        let m = PeerMapping::from_dump(&dump, "4.9.9.9".parse().unwrap());
        assert_eq!(m.peer_of(Asn(1224)), Some(Asn(3356)));
        assert_eq!(m.peer_of(Asn(38)), Some(Asn(3356)));
    }

    #[test]
    fn from_routes_matches_route_table_ingress() {
        let net = InternetBuilder::new(77)
            .tier1(3)
            .transit(10)
            .stubs(40)
            .build();
        let target = net.targets()[0].asn;
        let table = RouteTable::compute(net.graph(), target);
        let m = PeerMapping::from_routes(&table);
        for (asn, _) in table.iter() {
            if asn == target {
                continue;
            }
            assert_eq!(m.peer_of(asn), table.ingress_peer(asn), "source {asn}");
        }
        // Every peer in the mapping is a direct neighbour of the target.
        let neighbors: BTreeSet<Asn> = net.graph().neighbors(target).map(|(a, _)| a).collect();
        for (peer, _) in m.iter() {
            assert!(neighbors.contains(&peer), "{peer} not adjacent to {target}");
        }
    }

    #[test]
    fn fractional_change_counts_reassignments() {
        let mut a = PeerMapping::default();
        a.insert(Asn(1), Asn(100));
        a.insert(Asn(1), Asn(101));
        a.insert(Asn(2), Asn(102));
        a.insert(Asn(2), Asn(103));
        let mut b = a.clone();
        assert_eq!(a.fractional_change(&b), 0.0);
        // Move source 103 from peer 2 to peer 1.
        b.insert(Asn(1), Asn(103));
        assert_eq!(a.fractional_change(&b), 0.25);
        // Sources only present on one side are ignored.
        b.insert(Asn(3), Asn(999));
        assert_eq!(a.fractional_change(&b), 0.25);
    }

    #[test]
    fn fractional_change_empty_is_zero() {
        let a = PeerMapping::default();
        let b = PeerMapping::default();
        assert_eq!(a.fractional_change(&b), 0.0);
    }
}
