//! Property tests: dump codec robustness and mapping consistency.

use infilter_bgp::{BgpDump, DumpEntry, PeerMapping};
use infilter_net::{Asn, Prefix};
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = DumpEntry> {
    (
        any::<u32>(),
        0u8..=32,
        any::<u32>(),
        proptest::collection::vec(1u32..100_000, 1..8),
        any::<bool>(),
    )
        .prop_map(|(net, len, hop, path, best)| DumpEntry {
            prefix: Prefix::new(net.into(), len),
            next_hop: hop.into(),
            as_path: path.into_iter().map(Asn).collect(),
            best,
        })
}

proptest! {
    #[test]
    fn dump_render_parse_round_trips(entries in proptest::collection::vec(arb_entry(), 0..24)) {
        // Bare /32 prefixes render as `a.b.c.d/32`, which parses back
        // identically, so a full round trip holds for arbitrary entries.
        let dump = BgpDump { entries };
        let parsed = BgpDump::parse(&dump.render()).expect("own rendering parses");
        prop_assert_eq!(parsed, dump);
    }

    #[test]
    fn parser_never_panics_on_noise(text in "\\PC{0,400}") {
        let _ = BgpDump::parse(&text);
    }

    #[test]
    fn mapping_from_dump_is_internally_consistent(
        entries in proptest::collection::vec(arb_entry(), 0..24),
        addr in any::<u32>(),
    ) {
        let dump = BgpDump { entries };
        let mapping = PeerMapping::from_dump(&dump, addr.into());
        // peer_of and sources_of agree.
        for (peer, sources) in mapping.iter() {
            for s in sources {
                prop_assert_eq!(mapping.peer_of(*s), Some(peer));
            }
        }
        let total: usize = mapping.iter().map(|(_, s)| s.len()).sum();
        prop_assert_eq!(total, mapping.source_count());
        // Self-comparison never reports change.
        prop_assert_eq!(mapping.fractional_change(&mapping.clone()), 0.0);
    }

    #[test]
    fn fractional_change_is_bounded(
        a in proptest::collection::vec(arb_entry(), 0..16),
        b in proptest::collection::vec(arb_entry(), 0..16),
        addr in any::<u32>(),
    ) {
        let ma = PeerMapping::from_dump(&BgpDump { entries: a }, addr.into());
        let mb = PeerMapping::from_dump(&BgpDump { entries: b }, addr.into());
        let c = ma.fractional_change(&mb);
        prop_assert!((0.0..=1.0).contains(&c));
    }
}
