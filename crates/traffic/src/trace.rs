use serde::{Deserialize, Serialize};

use crate::AppClass;

/// One flow of a replayable trace, with abstract source/destination slots
/// instead of concrete addresses.
///
/// Dagflow later maps `src_slot` into the address sub-blocks allocated to a
/// source (or, for spoofed traffic, into *someone else's* blocks) and
/// `dst_slot` into the target network's address space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowTemplate {
    /// Flow start relative to trace start, milliseconds.
    pub start_ms: u64,
    /// Application class the flow belongs to (drives subcluster selection).
    pub app: AppClass,
    /// IP protocol number.
    pub protocol: u8,
    /// Abstract source identity; equal slots replay as equal addresses.
    pub src_slot: u64,
    /// Abstract destination identity within the target network.
    pub dst_slot: u64,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Packets in the flow.
    pub packets: u32,
    /// Total bytes in the flow.
    pub bytes: u32,
    /// Flow duration in milliseconds.
    pub duration_ms: u32,
    /// Cumulative TCP flags (zero for non-TCP).
    pub tcp_flags: u8,
}

impl FlowTemplate {
    /// End time of the flow relative to trace start.
    pub fn end_ms(&self) -> u64 {
        self.start_ms + self.duration_ms as u64
    }

    /// Mean bytes per packet, for sanity checks.
    pub fn bytes_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }
}

/// A replayable flow-level trace — the crate's stand-in for the paper's
/// DAG-format capture files.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Flows ordered by `start_ms`.
    pub flows: Vec<FlowTemplate>,
}

impl Trace {
    /// Creates a trace, sorting flows by start time.
    pub fn new(mut flows: Vec<FlowTemplate>) -> Trace {
        flows.sort_by_key(|f| f.start_ms);
        Trace { flows }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the trace has no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Time spanned from first flow start to last flow end, ms.
    pub fn span_ms(&self) -> u64 {
        let first = self.flows.first().map(|f| f.start_ms).unwrap_or(0);
        let last = self
            .flows
            .iter()
            .map(FlowTemplate::end_ms)
            .max()
            .unwrap_or(0);
        last.saturating_sub(first)
    }

    /// Concatenates another trace, shifting its flows by `offset_ms`.
    pub fn append_shifted(&mut self, other: &Trace, offset_ms: u64) {
        self.flows.extend(other.flows.iter().map(|f| FlowTemplate {
            start_ms: f.start_ms + offset_ms,
            ..*f
        }));
        self.flows.sort_by_key(|f| f.start_ms);
    }
}

impl FromIterator<FlowTemplate> for Trace {
    fn from_iter<I: IntoIterator<Item = FlowTemplate>>(iter: I) -> Trace {
        Trace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(start: u64, dur: u32) -> FlowTemplate {
        FlowTemplate {
            start_ms: start,
            app: AppClass::Http,
            protocol: 6,
            src_slot: 1,
            dst_slot: 2,
            src_port: 40000,
            dst_port: 80,
            packets: 10,
            bytes: 5000,
            duration_ms: dur,
            tcp_flags: 0,
        }
    }

    #[test]
    fn trace_sorts_by_start() {
        let t = Trace::new(vec![flow(100, 10), flow(0, 10), flow(50, 10)]);
        let starts: Vec<u64> = t.flows.iter().map(|f| f.start_ms).collect();
        assert_eq!(starts, vec![0, 50, 100]);
    }

    #[test]
    fn span_covers_longest_flow() {
        let t = Trace::new(vec![flow(0, 500), flow(100, 10)]);
        assert_eq!(t.span_ms(), 500);
        assert_eq!(Trace::default().span_ms(), 0);
    }

    #[test]
    fn append_shifted_moves_times() {
        let mut a = Trace::new(vec![flow(0, 10)]);
        let b = Trace::new(vec![flow(5, 10)]);
        a.append_shifted(&b, 1000);
        assert_eq!(a.len(), 2);
        assert_eq!(a.flows[1].start_ms, 1005);
    }

    #[test]
    fn bytes_per_packet_handles_zero() {
        let mut f = flow(0, 10);
        assert_eq!(f.bytes_per_packet(), 500.0);
        f.packets = 0;
        assert_eq!(f.bytes_per_packet(), 0.0);
    }
}
