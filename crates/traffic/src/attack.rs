use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{AppClass, FlowTemplate, Trace};

/// The twelve attacks of the paper's evaluation (§6.2): the named stealthy
/// tools (Puke, Jolt, Teardrop, Land), the Slammer worm, the TFN2K DDoS
/// flood, spoofed nmap-style host/network scans, and four service exploits
/// (http, ftp, smtp, dns) standing in for the Nessus-derived traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackKind {
    /// Forged ICMP unreachable storm against one client (stealthy).
    Puke,
    /// Oversized fragmented ICMP ping of death variant (stealthy).
    Jolt,
    /// Overlapping UDP fragments crashing the reassembler (stealthy).
    Teardrop,
    /// TCP SYN with source equal to destination (stealthy).
    Land,
    /// SQL Slammer: one 376–404-byte UDP packet to port 1434 per victim,
    /// sprayed across many hosts (network-scan footprint).
    Slammer,
    /// TFN2K distributed flood: sustained many-flow volume attack.
    Tfn2k,
    /// Spoofed idle scan of many ports on one host.
    HostScan,
    /// Spoofed sweep of one port across many hosts.
    NetworkScan,
    /// HTTP service exploit (oversized request, near-normal otherwise).
    HttpExploit,
    /// FTP service exploit (command-channel overflow).
    FtpExploit,
    /// SMTP service exploit (malformed long transaction).
    SmtpExploit,
    /// DNS service exploit (oversized response/TXT abuse).
    DnsExploit,
}

impl AttackKind {
    /// All twelve attacks in a stable order.
    pub const ALL: [AttackKind; 12] = [
        AttackKind::Puke,
        AttackKind::Jolt,
        AttackKind::Teardrop,
        AttackKind::Land,
        AttackKind::Slammer,
        AttackKind::Tfn2k,
        AttackKind::HostScan,
        AttackKind::NetworkScan,
        AttackKind::HttpExploit,
        AttackKind::FtpExploit,
        AttackKind::SmtpExploit,
        AttackKind::DnsExploit,
    ];

    /// Whether the attack involves one or very few packets — the class the
    /// paper stresses COTS signature IDSes missed.
    pub fn is_stealthy(&self) -> bool {
        matches!(
            self,
            AttackKind::Puke
                | AttackKind::Jolt
                | AttackKind::Teardrop
                | AttackKind::Land
                | AttackKind::HttpExploit
                | AttackKind::FtpExploit
                | AttackKind::SmtpExploit
                | AttackKind::DnsExploit
        )
    }

    /// Whether the attack's footprint is a scan (fixed port across hosts or
    /// many ports on one host) that Scan Analysis should catch.
    pub fn is_scan(&self) -> bool {
        matches!(
            self,
            AttackKind::Slammer | AttackKind::HostScan | AttackKind::NetworkScan
        )
    }

    /// Generates one instance of the attack. `dst_slots` bounds the victim
    /// slot space (the target network size); flows start at time zero.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, dst_slots: u64) -> AttackInstance {
        let flows = match self {
            AttackKind::Puke => {
                let victim = rng.gen_range(0..dst_slots);
                vec![icmp_flow(rng, victim, 3, 3 * 56, 40)]
            }
            AttackKind::Jolt => {
                let victim = rng.gen_range(0..dst_slots);
                // A single "packet" fragmented far past 64 KB.
                vec![icmp_flow(rng, victim, 44, 66_000, 15)]
            }
            AttackKind::Teardrop => {
                let victim = rng.gen_range(0..dst_slots);
                vec![FlowTemplate {
                    start_ms: 0,
                    app: AppClass::OtherUdp,
                    protocol: 17,
                    src_slot: rng.gen(),
                    dst_slot: victim,
                    src_port: rng.gen_range(1024..65535),
                    dst_port: rng.gen_range(1024..65535),
                    packets: 2,
                    bytes: 36 + 24,
                    duration_ms: 1,
                    tcp_flags: 0,
                }]
            }
            AttackKind::Land => {
                let victim = rng.gen_range(0..dst_slots);
                vec![FlowTemplate {
                    start_ms: 0,
                    app: AppClass::OtherTcp,
                    protocol: 6,
                    src_slot: rng.gen(),
                    dst_slot: victim,
                    src_port: 139,
                    dst_port: 139,
                    packets: 1,
                    bytes: 40,
                    duration_ms: 0,
                    tcp_flags: crate::attack::TCP_SYN,
                }]
            }
            AttackKind::Slammer => {
                // One single-packet UDP flow per victim host, fixed port.
                let victims = 30.min(dst_slots.max(1)) as usize;
                (0..victims)
                    .map(|i| FlowTemplate {
                        start_ms: (i as u64) * 8_000,
                        app: AppClass::OtherUdp,
                        protocol: 17,
                        src_slot: rng.gen(),
                        dst_slot: (rng.gen_range(0..dst_slots.max(1)) + i as u64)
                            % dst_slots.max(1),
                        src_port: rng.gen_range(1024..65535),
                        dst_port: 1434,
                        packets: 1,
                        bytes: 404,
                        duration_ms: 0,
                        tcp_flags: 0,
                    })
                    .collect()
            }
            AttackKind::Tfn2k => {
                let victim = rng.gen_range(0..dst_slots);
                (0..240)
                    .map(|i| {
                        let proto_pick = rng.gen_range(0..3);
                        let (app, protocol, dst_port, flags) = match proto_pick {
                            0 => (AppClass::OtherTcp, 6, 80, TCP_SYN),
                            1 => (AppClass::OtherUdp, 17, rng.gen_range(1..1024), 0),
                            _ => (AppClass::Icmp, 1, 0, 0),
                        };
                        FlowTemplate {
                            start_ms: i / 4,
                            app,
                            protocol,
                            src_slot: rng.gen(),
                            dst_slot: victim,
                            src_port: rng.gen_range(1024..65535),
                            dst_port,
                            packets: rng.gen_range(400..1200),
                            bytes: rng.gen_range(400..1200) * 60,
                            duration_ms: rng.gen_range(800..2500),
                            tcp_flags: flags,
                        }
                    })
                    .collect()
            }
            AttackKind::HostScan => {
                let victim = rng.gen_range(0..dst_slots);
                (0..60u16)
                    .map(|i| FlowTemplate {
                        start_ms: (i as u64) * 2_000,
                        app: AppClass::OtherTcp,
                        protocol: 6,
                        src_slot: rng.gen(),
                        dst_slot: victim,
                        src_port: rng.gen_range(1024..65535),
                        dst_port: 1 + i * 7,
                        packets: 1,
                        bytes: 40,
                        duration_ms: 0,
                        tcp_flags: TCP_SYN,
                    })
                    .collect()
            }
            AttackKind::NetworkScan => {
                let port = 445;
                (0..50u64)
                    .map(|i| FlowTemplate {
                        start_ms: i * 5_000,
                        app: AppClass::OtherTcp,
                        protocol: 6,
                        src_slot: rng.gen(),
                        dst_slot: (i * 17) % dst_slots.max(1),
                        src_port: rng.gen_range(1024..65535),
                        dst_port: port,
                        packets: 1,
                        bytes: 40,
                        duration_ms: 0,
                        tcp_flags: TCP_SYN,
                    })
                    .collect()
            }
            // The http/smtp exploits ride inside a median-looking session
            // (stealthy payload, normal envelope); ftp/dns exploits have a
            // tell-tale shape (tiny command-channel overflow, oversized
            // datagram).
            AttackKind::HttpExploit => {
                exploit_flows(rng, dst_slots, AppClass::Http, 13, 8_300, 850)
            }
            AttackKind::FtpExploit => exploit_flows(rng, dst_slots, AppClass::Ftp, 4, 2_600, 3),
            AttackKind::SmtpExploit => {
                exploit_flows(rng, dst_slots, AppClass::Smtp, 18, 8_200, 1_400)
            }
            AttackKind::DnsExploit => exploit_flows(rng, dst_slots, AppClass::Dns, 1, 4_100, 0),
        };
        AttackInstance {
            kind: *self,
            trace: Trace::new(flows),
        }
    }

    /// Short lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::Puke => "puke",
            AttackKind::Jolt => "jolt",
            AttackKind::Teardrop => "teardrop",
            AttackKind::Land => "land",
            AttackKind::Slammer => "slammer",
            AttackKind::Tfn2k => "tfn2k",
            AttackKind::HostScan => "host-scan",
            AttackKind::NetworkScan => "network-scan",
            AttackKind::HttpExploit => "http-exploit",
            AttackKind::FtpExploit => "ftp-exploit",
            AttackKind::SmtpExploit => "smtp-exploit",
            AttackKind::DnsExploit => "dns-exploit",
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const TCP_SYN: u8 = 0x02;

fn icmp_flow<R: Rng + ?Sized>(
    rng: &mut R,
    victim: u64,
    packets: u32,
    bytes: u32,
    duration_ms: u32,
) -> FlowTemplate {
    FlowTemplate {
        start_ms: 0,
        app: AppClass::Icmp,
        protocol: 1,
        src_slot: rng.gen(),
        dst_slot: victim,
        src_port: 0,
        dst_port: 0,
        packets,
        bytes,
        duration_ms,
        tcp_flags: 0,
    }
}

/// A service exploit: the tool tries three victim hosts, three payload
/// retries each, recycling one forged source per victim — nine flows from
/// three spoofed sources, all on the service's well-known port.
fn exploit_flows<R: Rng + ?Sized>(
    rng: &mut R,
    dst_slots: u64,
    app: AppClass,
    packets: u32,
    bytes: u32,
    duration_ms: u32,
) -> Vec<FlowTemplate> {
    let src_base: u64 = rng.gen();
    let src_port = rng.gen_range(1024..65535);
    let mut flows = Vec::with_capacity(9);
    for victim in 0..3u64 {
        let dst_slot = rng.gen_range(0..dst_slots.max(1));
        for retry in 0..3u64 {
            flows.push(FlowTemplate {
                start_ms: (victim * 3 + retry) * 2_000,
                app,
                protocol: app.protocol(),
                src_slot: src_base.wrapping_add(victim),
                dst_slot,
                src_port,
                dst_port: app.well_known_port(),
                packets,
                bytes,
                duration_ms,
                tcp_flags: if app.protocol() == 6 { TCP_SYN } else { 0 },
            });
        }
    }
    flows
}

/// One generated attack: its kind plus the replayable trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackInstance {
    /// Which attack this is.
    pub kind: AttackKind,
    /// The attack's flows.
    pub trace: Trace,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xa77ac)
    }

    #[test]
    fn twelve_unique_attacks() {
        let set: HashSet<AttackKind> = AttackKind::ALL.into_iter().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn stealthy_attacks_are_tiny() {
        let mut r = rng();
        for kind in AttackKind::ALL.into_iter().filter(AttackKind::is_stealthy) {
            let inst = kind.generate(&mut r, 1024);
            assert!(
                inst.trace.len() <= 9,
                "{kind} generated {} flows",
                inst.trace.len()
            );
            let total_packets: u32 = inst.trace.flows.iter().map(|f| f.packets).sum();
            assert!(total_packets <= 200, "{kind}: {total_packets} packets");
        }
    }

    #[test]
    fn slammer_matches_published_footprint() {
        let inst = AttackKind::Slammer.generate(&mut rng(), 1024);
        assert!(inst.trace.len() >= 20);
        for f in &inst.trace.flows {
            assert_eq!(f.protocol, 17);
            assert_eq!(f.dst_port, 1434);
            assert_eq!(f.packets, 1, "Slammer is a single-packet worm");
            assert_eq!(f.bytes, 404);
        }
        // Many distinct victims.
        let victims: HashSet<u64> = inst.trace.flows.iter().map(|f| f.dst_slot).collect();
        assert!(victims.len() >= 15);
    }

    #[test]
    fn host_scan_hits_many_ports_on_one_host() {
        let inst = AttackKind::HostScan.generate(&mut rng(), 1024);
        let victims: HashSet<u64> = inst.trace.flows.iter().map(|f| f.dst_slot).collect();
        assert_eq!(victims.len(), 1);
        let ports: HashSet<u16> = inst.trace.flows.iter().map(|f| f.dst_port).collect();
        assert!(ports.len() >= 50);
    }

    #[test]
    fn network_scan_hits_one_port_on_many_hosts() {
        let inst = AttackKind::NetworkScan.generate(&mut rng(), 1024);
        let victims: HashSet<u64> = inst.trace.flows.iter().map(|f| f.dst_slot).collect();
        assert!(victims.len() >= 30);
        let ports: HashSet<u16> = inst.trace.flows.iter().map(|f| f.dst_port).collect();
        assert_eq!(ports.len(), 1);
    }

    #[test]
    fn tfn2k_is_voluminous() {
        let inst = AttackKind::Tfn2k.generate(&mut rng(), 1024);
        assert!(inst.trace.len() >= 200);
        let total_packets: u64 = inst.trace.flows.iter().map(|f| f.packets as u64).sum();
        assert!(total_packets > 50_000, "flood too small: {total_packets}");
        // Single victim.
        let victims: HashSet<u64> = inst.trace.flows.iter().map(|f| f.dst_slot).collect();
        assert_eq!(victims.len(), 1);
    }

    #[test]
    fn exploits_land_in_their_service_subcluster() {
        let mut r = rng();
        for (kind, app) in [
            (AttackKind::HttpExploit, AppClass::Http),
            (AttackKind::FtpExploit, AppClass::Ftp),
            (AttackKind::SmtpExploit, AppClass::Smtp),
            (AttackKind::DnsExploit, AppClass::Dns),
        ] {
            let inst = kind.generate(&mut r, 1024);
            for f in &inst.trace.flows {
                assert_eq!(AppClass::classify(f.protocol, f.dst_port), app, "{kind}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in AttackKind::ALL {
            let a = kind.generate(&mut StdRng::seed_from_u64(5), 512);
            let b = kind.generate(&mut StdRng::seed_from_u64(5), 512);
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn dst_slots_one_is_handled() {
        for kind in AttackKind::ALL {
            let inst = kind.generate(&mut rng(), 1);
            assert!(inst.trace.flows.iter().all(|f| f.dst_slot == 0), "{kind}");
        }
    }
}
