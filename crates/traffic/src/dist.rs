//! Minimal distribution samplers.
//!
//! The workspace's dependency policy allows `rand` but not `rand_distr`, so
//! the two heavy-tailed distributions traffic modelling needs are
//! implemented here: log-normal via Box–Muller and Pareto via inverse-CDF.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Log-normal distribution parameterised by the underlying normal's mean
/// and standard deviation.
///
/// # Examples
///
/// ```
/// use infilter_traffic::LogNormal;
/// use rand::SeedableRng;
///
/// let d = LogNormal::new(6.0, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; `sigma` must be non-negative and both
    /// parameters finite.
    ///
    /// # Panics
    ///
    /// Panics on non-finite parameters or negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Builds the distribution from the desired *median* and a shape factor
    /// (sigma of the underlying normal). `median = exp(mu)`.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not strictly positive.
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Pareto {
        assert!(x_min > 0.0, "x_min must be positive");
        assert!(alpha > 0.0, "alpha must be positive");
        Pareto { x_min, alpha }
    }

    /// Draws one sample (always `>= x_min`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// One standard-normal variate via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_median_is_exp_mu() {
        let d = LogNormal::from_median(1000.0, 0.8);
        let mut rng = StdRng::seed_from_u64(7);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median - 1000.0).abs() / 1000.0 < 0.05,
            "empirical median {median}"
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::from_median(50.0, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!((d.sample(&mut rng) - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pareto_respects_minimum_and_tail() {
        let d = Pareto::new(40.0, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 40.0));
        // Heavy tail: some samples should exceed 20x the minimum.
        assert!(samples.iter().any(|&x| x > 800.0));
        // P(X > 2*x_min) = 2^-alpha ≈ 0.435.
        let frac = samples.iter().filter(|&&x| x > 80.0).count() as f64 / samples.len() as f64;
        assert!((frac - 0.435).abs() < 0.03, "tail fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn negative_sigma_panics() {
        LogNormal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "x_min must be positive")]
    fn bad_pareto_panics() {
        Pareto::new(0.0, 1.0);
    }
}
