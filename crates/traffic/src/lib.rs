//! Synthetic traffic substrate replacing the paper's CAIDA/NLANR traces and
//! captured attack tools.
//!
//! The paper feeds its testbed from two kinds of previously captured
//! traces: "normal" Internet traffic (CAIDA/NLANR) and twelve attack traces
//! captured from real tools (Nessus, nmap, Slammer, TFN2K, Puke, Jolt,
//! Teardrop, …). Neither data set is redistributable, so this crate
//! generates distribution-matched substitutes at the *flow* level — the
//! granularity the whole detection pipeline operates at:
//!
//! * [`NormalProfile`] draws flows from per-application mixtures (HTTP,
//!   SMTP, FTP, DNS, other-TCP, other-UDP, ICMP) with log-normal sizes and
//!   durations, matching the subcluster partition of §5.1.3(c);
//! * [`AttackKind`] enumerates the twelve attacks and generates each one's
//!   flow-level footprint (single-packet malformed flows for the stealthy
//!   attacks, host/port fan-out for scans, sustained floods for TFN2K);
//! * [`Trace`] is the replayable artifact [`infilter_dagflow`] consumes —
//!   the stand-in for the paper's DAG-format trace files.
//!
//! Sources and destinations in a [`FlowTemplate`] are abstract *slots*;
//! Dagflow maps them onto concrete addresses from its allocated sub-blocks,
//! which is exactly how the paper's tool "can replace the source IP
//! addresses in the generated NetFlow records".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod dist;
mod profile;
mod trace;

pub use attack::{AttackInstance, AttackKind};
pub use dist::{LogNormal, Pareto};
pub use profile::{AppClass, NormalProfile};
pub use trace::{FlowTemplate, Trace};
