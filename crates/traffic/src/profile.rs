use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist::LogNormal;
use crate::{FlowTemplate, Trace};

/// Application classes, matching the paper's subcluster partition
/// (§5.1.3(c)): http, smtp, ftp, dns, all other udp, all other tcp, icmp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppClass {
    /// TCP port 80.
    Http,
    /// TCP port 25.
    Smtp,
    /// TCP port 21.
    Ftp,
    /// UDP port 53.
    Dns,
    /// UDP on any other port.
    OtherUdp,
    /// TCP on any other port.
    OtherTcp,
    /// ICMP.
    Icmp,
}

impl AppClass {
    /// All classes in a stable order.
    pub const ALL: [AppClass; 7] = [
        AppClass::Http,
        AppClass::Smtp,
        AppClass::Ftp,
        AppClass::Dns,
        AppClass::OtherUdp,
        AppClass::OtherTcp,
        AppClass::Icmp,
    ];

    /// The IP protocol number of the class.
    pub fn protocol(&self) -> u8 {
        match self {
            AppClass::Http | AppClass::Smtp | AppClass::Ftp | AppClass::OtherTcp => 6,
            AppClass::Dns | AppClass::OtherUdp => 17,
            AppClass::Icmp => 1,
        }
    }

    /// The well-known destination port (0 for ICMP).
    pub fn well_known_port(&self) -> u16 {
        match self {
            AppClass::Http => 80,
            AppClass::Smtp => 25,
            AppClass::Ftp => 21,
            AppClass::Dns => 53,
            AppClass::OtherUdp => 7777,
            AppClass::OtherTcp => 8443,
            AppClass::Icmp => 0,
        }
    }

    /// Classifies a `(protocol, dst_port)` pair, the rule used to route
    /// flows to subclusters.
    pub fn classify(protocol: u8, dst_port: u16) -> AppClass {
        match (protocol, dst_port) {
            (6, 80) => AppClass::Http,
            (6, 25) => AppClass::Smtp,
            (6, 21) => AppClass::Ftp,
            (17, 53) => AppClass::Dns,
            (17, _) => AppClass::OtherUdp,
            (6, _) => AppClass::OtherTcp,
            _ => AppClass::Icmp,
        }
    }

    /// Short lowercase name (`http`, `smtp`, …).
    pub fn name(&self) -> &'static str {
        match self {
            AppClass::Http => "http",
            AppClass::Smtp => "smtp",
            AppClass::Ftp => "ftp",
            AppClass::Dns => "dns",
            AppClass::OtherUdp => "udp",
            AppClass::OtherTcp => "tcp",
            AppClass::Icmp => "icmp",
        }
    }
}

impl std::fmt::Display for AppClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class flow-shape parameters.
#[derive(Debug, Clone, Copy)]
struct ClassShape {
    weight: f64,
    packets: LogNormal,
    bytes_per_packet: LogNormal,
    duration_ms: LogNormal,
}

/// Generator of "normal" Internet traffic, the substitute for the paper's
/// CAIDA/NLANR capture files.
///
/// The mixture weights and per-class log-normal shapes approximate a
/// backbone mix of the early 2000s (HTTP-dominated, short DNS flows, a
/// heavy FTP tail).
///
/// # Examples
///
/// ```
/// use infilter_traffic::NormalProfile;
/// use rand::SeedableRng;
///
/// let profile = NormalProfile::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let trace = profile.generate(&mut rng, 100, 60_000);
/// assert_eq!(trace.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct NormalProfile {
    shapes: Vec<(AppClass, ClassShape)>,
    /// Number of distinct source slots flows are drawn from.
    pub source_slots: u64,
    /// Number of distinct destination slots inside the target network.
    pub dest_slots: u64,
}

impl Default for NormalProfile {
    fn default() -> NormalProfile {
        let shapes = vec![
            (
                AppClass::Http,
                ClassShape {
                    weight: 0.55,
                    packets: LogNormal::from_median(12.0, 0.9),
                    bytes_per_packet: LogNormal::from_median(600.0, 0.35),
                    duration_ms: LogNormal::from_median(900.0, 1.0),
                },
            ),
            (
                AppClass::Smtp,
                ClassShape {
                    weight: 0.08,
                    packets: LogNormal::from_median(18.0, 0.7),
                    bytes_per_packet: LogNormal::from_median(450.0, 0.4),
                    duration_ms: LogNormal::from_median(1500.0, 0.8),
                },
            ),
            (
                AppClass::Ftp,
                ClassShape {
                    weight: 0.04,
                    packets: LogNormal::from_median(80.0, 1.2),
                    bytes_per_packet: LogNormal::from_median(900.0, 0.3),
                    duration_ms: LogNormal::from_median(8000.0, 1.1),
                },
            ),
            (
                AppClass::Dns,
                ClassShape {
                    weight: 0.16,
                    packets: LogNormal::from_median(2.0, 0.4),
                    bytes_per_packet: LogNormal::from_median(90.0, 0.3),
                    duration_ms: LogNormal::from_median(40.0, 0.8),
                },
            ),
            (
                AppClass::OtherUdp,
                ClassShape {
                    weight: 0.06,
                    packets: LogNormal::from_median(6.0, 1.0),
                    bytes_per_packet: LogNormal::from_median(250.0, 0.6),
                    duration_ms: LogNormal::from_median(500.0, 1.0),
                },
            ),
            (
                AppClass::OtherTcp,
                ClassShape {
                    weight: 0.09,
                    packets: LogNormal::from_median(15.0, 1.1),
                    bytes_per_packet: LogNormal::from_median(500.0, 0.5),
                    duration_ms: LogNormal::from_median(2000.0, 1.2),
                },
            ),
            (
                AppClass::Icmp,
                ClassShape {
                    weight: 0.02,
                    packets: LogNormal::from_median(3.0, 0.6),
                    bytes_per_packet: LogNormal::from_median(64.0, 0.2),
                    duration_ms: LogNormal::from_median(1000.0, 0.6),
                },
            ),
        ];
        NormalProfile {
            shapes,
            source_slots: 1 << 24,
            dest_slots: 4096,
        }
    }
}

impl NormalProfile {
    /// Draws one normal flow starting at `start_ms`.
    pub fn sample_flow<R: Rng + ?Sized>(&self, rng: &mut R, start_ms: u64) -> FlowTemplate {
        let total: f64 = self.shapes.iter().map(|(_, s)| s.weight).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = self.shapes.last().expect("non-empty shapes");
        for entry in &self.shapes {
            if pick < entry.1.weight {
                chosen = entry;
                break;
            }
            pick -= entry.1.weight;
        }
        let (app, shape) = (chosen.0, chosen.1);
        let packets = shape.packets.sample(rng).round().max(1.0) as u32;
        let bpp = shape.bytes_per_packet.sample(rng).clamp(28.0, 1500.0);
        let bytes = (packets as f64 * bpp).round() as u32;
        let duration_ms = if packets == 1 {
            0
        } else {
            shape.duration_ms.sample(rng).round().max(1.0) as u32
        };
        FlowTemplate {
            start_ms,
            app,
            protocol: app.protocol(),
            src_slot: rng.gen_range(0..self.source_slots),
            dst_slot: rng.gen_range(0..self.dest_slots),
            src_port: rng.gen_range(1024..65535),
            dst_port: app.well_known_port(),
            packets,
            bytes,
            duration_ms,
            tcp_flags: if app.protocol() == 6 { 0x1b } else { 0 },
        }
    }

    /// Generates a trace of `n_flows` flows with start times uniform over
    /// `span_ms`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, n_flows: usize, span_ms: u64) -> Trace {
        (0..n_flows)
            .map(|_| {
                let start = rng.gen_range(0..span_ms.max(1));
                self.sample_flow(rng, start)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn classify_round_trips_well_known_ports() {
        for app in AppClass::ALL {
            assert_eq!(
                AppClass::classify(app.protocol(), app.well_known_port()),
                app
            );
        }
    }

    #[test]
    fn classify_routes_unknown_ports_to_catch_alls() {
        assert_eq!(AppClass::classify(6, 9999), AppClass::OtherTcp);
        assert_eq!(AppClass::classify(17, 1434), AppClass::OtherUdp);
        assert_eq!(AppClass::classify(1, 0), AppClass::Icmp);
        assert_eq!(AppClass::classify(47, 0), AppClass::Icmp); // GRE lumps with icmp bucket
    }

    #[test]
    fn mixture_respects_weights_roughly() {
        let profile = NormalProfile::default();
        let mut rng = StdRng::seed_from_u64(5);
        let trace = profile.generate(&mut rng, 20_000, 1_000_000);
        let mut counts: HashMap<AppClass, usize> = HashMap::new();
        for f in &trace.flows {
            *counts.entry(f.app).or_default() += 1;
        }
        let http_frac = counts[&AppClass::Http] as f64 / trace.len() as f64;
        assert!((http_frac - 0.55).abs() < 0.03, "http fraction {http_frac}");
        let dns_frac = counts[&AppClass::Dns] as f64 / trace.len() as f64;
        assert!((dns_frac - 0.16).abs() < 0.02, "dns fraction {dns_frac}");
        // Every class appears at this sample size.
        assert_eq!(counts.len(), 7);
    }

    #[test]
    fn flows_are_physically_plausible() {
        let profile = NormalProfile::default();
        let mut rng = StdRng::seed_from_u64(5);
        let trace = profile.generate(&mut rng, 5000, 60_000);
        for f in &trace.flows {
            assert!(f.packets >= 1);
            assert!(
                f.bytes >= f.packets * 28,
                "flow smaller than headers: {f:?}"
            );
            let bpp = f.bytes_per_packet();
            assert!((28.0..=1501.0).contains(&bpp), "bytes/packet {bpp}");
            assert_eq!(f.protocol, f.app.protocol());
            if f.packets == 1 {
                assert_eq!(f.duration_ms, 0, "single-packet flow with duration");
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let profile = NormalProfile::default();
        let a = profile.generate(&mut StdRng::seed_from_u64(9), 50, 1000);
        let b = profile.generate(&mut StdRng::seed_from_u64(9), 50, 1000);
        assert_eq!(a, b);
    }
}
