//! Property-based tests for prefixes, the trie, and the sub-block scheme.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use infilter_net::{Prefix, PrefixTrie, SubBlock, SubBlockRange};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(Ipv4Addr::from(bits), len))
}

/// Oracle: linear scan for the most specific containing prefix.
fn naive_lpm(table: &HashMap<Prefix, u32>, addr: Ipv4Addr) -> Option<(Prefix, u32)> {
    table
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*p, *v))
}

proptest! {
    #[test]
    fn prefix_display_parse_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_its_bounds(p in arb_prefix()) {
        prop_assert!(p.contains(p.first()));
        prop_assert!(p.contains(p.last()));
        prop_assert_eq!(u64::from(u32::from(p.last())) - u64::from(u32::from(p.first())) + 1,
                        p.size());
    }

    #[test]
    fn covers_is_consistent_with_contains(a in arb_prefix(), b in arb_prefix()) {
        if a.covers(b) {
            prop_assert!(a.contains(b.first()));
            prop_assert!(a.contains(b.last()));
            prop_assert!(a.len() <= b.len());
        }
    }

    #[test]
    fn trie_matches_naive_lpm(
        entries in proptest::collection::hash_map(arb_prefix(), any::<u32>(), 0..64),
        probes in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        let trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        prop_assert_eq!(trie.len(), entries.len());
        for bits in probes {
            let addr = Ipv4Addr::from(bits);
            let got = trie.lookup(addr).map(|(p, v)| (p, *v));
            let want = naive_lpm(&entries, addr);
            // Values may collide only if two equal-length prefixes both match,
            // which is impossible: equal-length matching prefixes are equal.
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn trie_remove_restores_oracle(
        entries in proptest::collection::hash_map(arb_prefix(), any::<u32>(), 1..32),
        probe in any::<u32>(),
    ) {
        let mut table = entries.clone();
        let mut trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        // Remove half the entries and re-check the oracle.
        let victims: Vec<Prefix> = table.keys().copied().take(table.len() / 2).collect();
        for v in victims {
            trie.remove(v);
            table.remove(&v);
        }
        let addr = Ipv4Addr::from(probe);
        prop_assert_eq!(trie.lookup(addr).map(|(p, v)| (p, *v)), naive_lpm(&table, addr));
    }

    #[test]
    fn sub_block_linear_round_trip(idx in 0usize..1144) {
        let sb = SubBlock::from_linear(idx).unwrap();
        prop_assert_eq!(sb.linear(), idx);
        let reparsed: SubBlock = sb.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, sb);
    }

    #[test]
    fn sub_block_prefixes_are_disjoint(a in 0usize..1144, b in 0usize..1144) {
        prop_assume!(a != b);
        let pa = SubBlock::from_linear(a).unwrap().prefix();
        let pb = SubBlock::from_linear(b).unwrap().prefix();
        prop_assert!(!pa.covers(pb) && !pb.covers(pa), "{pa} overlaps {pb}");
    }

    #[test]
    fn range_len_matches_iteration(first in 0usize..1144, extra in 0usize..64) {
        let last = (first + extra).min(1143);
        let r = SubBlockRange::new(
            SubBlock::from_linear(first).unwrap(),
            SubBlock::from_linear(last).unwrap(),
        ).unwrap();
        prop_assert_eq!(r.len(), r.iter().count());
        prop_assert_eq!(r.len(), last - first + 1);
        prop_assert!(r.iter().all(|sb| r.contains(sb)));
    }
}
