//! Property-based tests for prefixes, the trie, and the sub-block scheme.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use infilter_net::{FrozenLpm, Prefix, PrefixTrie, SubBlock, SubBlockRange};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(Ipv4Addr::from(bits), len))
}

/// A deliberately nested, sibling-heavy prefix set: every prefix is a
/// truncation of a small perturbation of one base address, so default
/// routes, host routes, shadowing and adjacent siblings all occur with
/// high probability — the cases where a multi-bit-stride LPM can diverge
/// from bit-at-a-time matching.
fn arb_nested_set() -> impl Strategy<Value = Vec<Prefix>> {
    (
        any::<u32>(),
        proptest::collection::vec((any::<u16>(), 0u8..=32), 1..48),
    )
        .prop_map(|(base, tweaks)| {
            tweaks
                .into_iter()
                .map(|(delta, len)| Prefix::new(Ipv4Addr::from(base ^ u32::from(delta)), len))
                .collect()
        })
}

/// Oracle: linear scan for the most specific containing prefix.
fn naive_lpm(table: &HashMap<Prefix, u32>, addr: Ipv4Addr) -> Option<(Prefix, u32)> {
    table
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*p, *v))
}

proptest! {
    #[test]
    fn prefix_display_parse_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_its_bounds(p in arb_prefix()) {
        prop_assert!(p.contains(p.first()));
        prop_assert!(p.contains(p.last()));
        prop_assert_eq!(u64::from(u32::from(p.last())) - u64::from(u32::from(p.first())) + 1,
                        p.size());
    }

    #[test]
    fn covers_is_consistent_with_contains(a in arb_prefix(), b in arb_prefix()) {
        if a.covers(b) {
            prop_assert!(a.contains(b.first()));
            prop_assert!(a.contains(b.last()));
            prop_assert!(a.len() <= b.len());
        }
    }

    #[test]
    fn trie_matches_naive_lpm(
        entries in proptest::collection::hash_map(arb_prefix(), any::<u32>(), 0..64),
        probes in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        let trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        prop_assert_eq!(trie.len(), entries.len());
        for bits in probes {
            let addr = Ipv4Addr::from(bits);
            let got = trie.lookup(addr).map(|(p, v)| (p, *v));
            let want = naive_lpm(&entries, addr);
            // Values may collide only if two equal-length prefixes both match,
            // which is impossible: equal-length matching prefixes are equal.
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn trie_remove_restores_oracle(
        entries in proptest::collection::hash_map(arb_prefix(), any::<u32>(), 1..32),
        probe in any::<u32>(),
    ) {
        let mut table = entries.clone();
        let mut trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        // Remove half the entries and re-check the oracle.
        let victims: Vec<Prefix> = table.keys().copied().take(table.len() / 2).collect();
        for v in victims {
            trie.remove(v);
            table.remove(&v);
        }
        let addr = Ipv4Addr::from(probe);
        prop_assert_eq!(trie.lookup(addr).map(|(p, v)| (p, *v)), naive_lpm(&table, addr));
    }

    #[test]
    fn frozen_lpm_matches_trie_and_walker(
        entries in proptest::collection::hash_map(arb_prefix(), any::<u32>(), 0..64),
        probes in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        let trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        let lpm = FrozenLpm::compile(&trie);
        prop_assert_eq!(lpm.len(), trie.len());
        let mut walker = trie.walker();
        for bits in probes {
            let addr = Ipv4Addr::from(bits);
            let want = trie.lookup(addr).map(|(p, v)| (p, *v));
            prop_assert_eq!(lpm.lookup(addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(lpm.lookup_bits(bits).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(walker.lookup(addr).map(|(p, v)| (p, *v)), want);
        }
    }

    #[test]
    fn frozen_lpm_handles_nested_sibling_sets(
        prefixes in arb_nested_set(),
        deltas in proptest::collection::vec(any::<u16>(), 1..64),
    ) {
        let trie: PrefixTrie<u32> = prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect();
        let lpm = FrozenLpm::compile(&trie);
        // Probe around the cluster: prefix bounds plus nearby addresses.
        let base = prefixes[0].bits();
        let probes: Vec<u32> = prefixes
            .iter()
            .flat_map(|p| [p.bits(), u32::from(p.last())])
            .chain(deltas.iter().map(|&d| base ^ u32::from(d)))
            .collect();
        for bits in &probes {
            let addr = Ipv4Addr::from(*bits);
            prop_assert_eq!(
                lpm.lookup(addr).map(|(p, v)| (p, *v)),
                trie.lookup(addr).map(|(p, v)| (p, *v))
            );
        }
        // The batch API agrees with scalar lookups, by index.
        let mut batched: Vec<Option<u32>> = Vec::new();
        lpm.lookup_batch(&probes, |_, r| batched.push(r.map(|(_, v)| *v)));
        let scalar: Vec<Option<u32>> = probes
            .iter()
            .map(|&b| lpm.lookup_bits(b).map(|(_, v)| *v))
            .collect();
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn sub_block_linear_round_trip(idx in 0usize..1144) {
        let sb = SubBlock::from_linear(idx).unwrap();
        prop_assert_eq!(sb.linear(), idx);
        let reparsed: SubBlock = sb.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, sb);
    }

    #[test]
    fn sub_block_prefixes_are_disjoint(a in 0usize..1144, b in 0usize..1144) {
        prop_assume!(a != b);
        let pa = SubBlock::from_linear(a).unwrap().prefix();
        let pb = SubBlock::from_linear(b).unwrap().prefix();
        prop_assert!(!pa.covers(pb) && !pb.covers(pa), "{pa} overlaps {pb}");
    }

    #[test]
    fn range_len_matches_iteration(first in 0usize..1144, extra in 0usize..64) {
        let last = (first + extra).min(1143);
        let r = SubBlockRange::new(
            SubBlock::from_linear(first).unwrap(),
            SubBlock::from_linear(last).unwrap(),
        ).unwrap();
        prop_assert_eq!(r.len(), r.iter().count());
        prop_assert_eq!(r.len(), last - first + 1);
        prop_assert!(r.iter().all(|sb| r.contains(sb)));
    }
}
