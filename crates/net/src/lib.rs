//! Core IPv4 addressing types shared by every crate in the InFilter
//! reproduction.
//!
//! The paper's testbed identifies traffic sources by *address sub-blocks*: the
//! 143 publicly-routable `/8` blocks of October 2004 (its Table 1), each split
//! into eight `/11` sub-blocks and named `1a` through `143h` (`125h` is the
//! last one actually used). This crate provides:
//!
//! * [`Prefix`] — a validated IPv4 CIDR prefix with containment tests,
//!   parsing and formatting.
//! * [`PrefixTrie`] — a binary trie keyed by prefixes with longest-prefix
//!   matching, the substrate for EIA sets and BGP RIBs.
//! * [`FrozenLpm`] — an immutable multi-bit-stride compilation of a trie
//!   (direct /16 root table + stride-8 nodes) for read-mostly hot paths:
//!   ≤ 3 memory touches per lookup instead of ≤ 32 node hops.
//! * [`blocks`] — the Table 1 block scheme and the `1a..125h` notation.
//! * [`Asn`] / [`RouterId`] — newtypes so autonomous-system numbers and
//!   router identities cannot be confused with ordinary integers.
//!
//! # Examples
//!
//! ```
//! use infilter_net::{Prefix, PrefixTrie};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut trie = PrefixTrie::new();
//! trie.insert("4.0.0.0/8".parse()?, "AS3356");
//! trie.insert("4.2.101.0/24".parse()?, "AS6325");
//!
//! // Longest prefix wins, as in the paper's Routeviews example.
//! let (pfx, who) = trie.lookup("4.2.101.20".parse()?).unwrap();
//! assert_eq!(*who, "AS6325");
//! assert_eq!(pfx, "4.2.101.0/24".parse()?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
mod hash;
mod ids;
mod lpm;
mod prefix;
mod trie;

pub use blocks::{SubBlock, SubBlockRange};
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use ids::{Asn, RouterId};
pub use lpm::FrozenLpm;
pub use prefix::{ParsePrefixError, Prefix};
pub use trie::{Matches, PrefixTrie, TrieWalker};
