//! A fast, non-cryptographic hasher for integer-keyed hot-path maps.
//!
//! The scan-analysis counters key on `(u16, u16)`, `(u16, Ipv4Addr)` and
//! bare ports/addresses — short, fixed-width integer keys hashed millions
//! of times per second. `std`'s default SipHash pays for DoS resistance
//! that an already-bounded sliding window does not need. This module
//! implements the Firefox/rustc "Fx" multiply-rotate hash: one rotate,
//! one xor and one multiply per word, with good enough avalanche that
//! structured keys (sequential scan targets!) still spread across
//! buckets — the reason it is preferred here over a pure identity hash.
//!
//! # Examples
//!
//! ```
//! use infilter_net::FxHashMap;
//!
//! let mut counts: FxHashMap<u16, u32> = FxHashMap::default();
//! *counts.entry(443).or_insert(0) += 1;
//! assert_eq!(counts[&443], 1);
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`] — drop-in for `std::collections::HashMap`
/// on trusted, integer-like keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox Fx hash: `hash = (hash.rotate_left(5) ^ word) * SEED`
/// per input word. Not DoS-resistant; use only on keys an attacker cannot
/// choose without bound (here: keys evicted by a fixed-size window).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};
    use std::net::Ipv4Addr;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&(7u16, 443u16)), hash_of(&(7u16, 443u16)));
        assert_eq!(
            hash_of(&Ipv4Addr::new(10, 0, 0, 1)),
            hash_of(&Ipv4Addr::new(10, 0, 0, 1))
        );
    }

    #[test]
    fn nearby_keys_do_not_collide() {
        // Sequential scan targets — the worst case for identity hashing —
        // must still land in distinct buckets of a small table.
        let mut buckets = std::collections::HashSet::new();
        for host in 0u32..1024 {
            buckets.insert(hash_of(&host) % 64);
        }
        assert!(buckets.len() > 32, "only {} buckets hit", buckets.len());
    }

    #[test]
    fn byte_slices_and_words_feed_the_same_mixer() {
        // Chunked `write` must consume trailing partial words.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let long = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let short = h.finish();
        assert_ne!(long, short);
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<(u16, Ipv4Addr), usize> = FxHashMap::default();
        let key = (3u16, Ipv4Addr::new(96, 1, 0, 20));
        *m.entry(key).or_insert(0) += 1;
        *m.entry(key).or_insert(0) += 1;
        assert_eq!(m[&key], 2);
        m.remove(&key);
        assert!(m.is_empty());
    }
}
