use std::fmt;

use serde::{Deserialize, Serialize};

/// An autonomous-system number.
///
/// # Examples
///
/// ```
/// use infilter_net::Asn;
///
/// let lvl3 = Asn(3356);
/// assert_eq!(lvl3.to_string(), "AS3356");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(n: u32) -> Asn {
        Asn(n)
    }
}

/// Identifier of a border router inside the target network.
///
/// The paper's topology (its Figure 2) connects each peer AS to the target
/// network through one border router; `RouterId` names that device.
///
/// # Examples
///
/// ```
/// use infilter_net::RouterId;
///
/// let br = RouterId(3);
/// assert_eq!(br.to_string(), "BR3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct RouterId(pub u32);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BR{}", self.0)
    }
}

impl From<u32> for RouterId {
    fn from(n: u32) -> RouterId {
        RouterId(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Asn(1).to_string(), "AS1");
        assert_eq!(RouterId(10).to_string(), "BR10");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(Asn(9) < Asn(10514));
        assert!(RouterId(1) < RouterId(2));
    }

    #[test]
    fn conversions() {
        assert_eq!(Asn::from(7018u32), Asn(7018));
        assert_eq!(RouterId::from(4u32), RouterId(4));
    }
}
