//! The paper's Table 1 address-block scheme.
//!
//! Table 1 lists the 143 publicly-routable, allocated unicast `/8` blocks as
//! of 28 October 2004. Each `/8` is split into eight `/11` sub-blocks which
//! the paper names with a 1-based block number and a letter `a..h`: `1a` is
//! `3.0.0.0/11`, `13d` is `15.96.0.0/11` and `125h` — the last sub-block used
//! in the experiments — is `204.224.0.0/11`. Sub-blocks are also addressed by
//! their *linear index* `0..1144` (`(block − 1) × 8 + letter`), and the first
//! 1000 linear indices (`1a` through `125h`) form the experiment address
//! space.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::Prefix;

/// The first octets of the 143 publicly-routable, allocated `/8` unicast
/// blocks reproduced verbatim from the paper's Table 1.
pub const SLASH8_FIRST_OCTETS: [u8; 143] = [
    3, 4, 6, 8, 9, 11, 12, 13, 14, 15, //
    16, 17, 18, 19, 20, 21, 22, 24, 25, 26, //
    28, 29, 30, 32, 33, 34, 35, 38, 40, 43, //
    44, 45, 46, 47, 48, 51, 52, 53, 54, 55, //
    56, 57, 58, 59, 60, 61, 62, 63, 64, 65, //
    66, 67, 68, 69, 70, 71, 72, 80, 81, 82, //
    83, 84, 85, 86, 87, 88, 128, 129, 130, 131, //
    132, 133, 134, 135, 136, 137, 138, 139, 140, 141, //
    142, 143, 144, 145, 146, 147, 148, 149, 150, 151, //
    152, 153, 154, 155, 156, 157, 158, 159, 160, 161, //
    162, 163, 164, 165, 166, 167, 168, 169, 170, 171, //
    172, 188, 191, 192, 193, 194, 195, 196, 198, 199, //
    200, 201, 202, 203, 204, 205, 206, 207, 208, 209, //
    210, 211, 212, 213, 214, 215, 216, 217, 218, 219, //
    220, 221, 222,
];

/// Total number of `/11` sub-blocks (143 blocks × 8).
pub const TOTAL_SUB_BLOCKS: usize = SLASH8_FIRST_OCTETS.len() * 8;

/// Number of sub-blocks actually used by the paper's experiments
/// (`1a` through `125h`; the remaining 144 are ignored).
pub const EXPERIMENT_SUB_BLOCKS: usize = 1000;

/// One `/11` sub-block in the paper's `1a..143h` notation.
///
/// # Examples
///
/// ```
/// use infilter_net::SubBlock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sb: SubBlock = "2c".parse()?;
/// assert_eq!(sb.prefix().to_string(), "4.64.0.0/11");
/// assert_eq!(sb.to_string(), "2c");
/// assert_eq!(SubBlock::from_linear(999)?.to_string(), "125h");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubBlock {
    /// 1-based block number into [`SLASH8_FIRST_OCTETS`] (1..=143).
    block: u16,
    /// Sub-block letter index (0 = `a` .. 7 = `h`).
    letter: u8,
}

impl SubBlock {
    /// Creates a sub-block from a 1-based block number and a letter index
    /// (0 = `a` .. 7 = `h`).
    ///
    /// # Errors
    ///
    /// Returns [`SubBlockError::BlockOutOfRange`] or
    /// [`SubBlockError::LetterOutOfRange`] for invalid coordinates.
    pub fn new(block: u16, letter: u8) -> Result<SubBlock, SubBlockError> {
        if block == 0 || block as usize > SLASH8_FIRST_OCTETS.len() {
            return Err(SubBlockError::BlockOutOfRange(block));
        }
        if letter > 7 {
            return Err(SubBlockError::LetterOutOfRange(letter));
        }
        Ok(SubBlock { block, letter })
    }

    /// Creates a sub-block from its linear index `0..1144`
    /// (`1a` = 0, `1b` = 1, …, `143h` = 1143).
    ///
    /// # Errors
    ///
    /// Returns [`SubBlockError::LinearOutOfRange`] if `idx >= 1144`.
    pub fn from_linear(idx: usize) -> Result<SubBlock, SubBlockError> {
        if idx >= TOTAL_SUB_BLOCKS {
            return Err(SubBlockError::LinearOutOfRange(idx));
        }
        Ok(SubBlock {
            block: (idx / 8 + 1) as u16,
            letter: (idx % 8) as u8,
        })
    }

    /// The linear index `0..1144` of this sub-block.
    pub fn linear(&self) -> usize {
        (self.block as usize - 1) * 8 + self.letter as usize
    }

    /// The 1-based block number (column "numerical count" in the paper).
    pub fn block(&self) -> u16 {
        self.block
    }

    /// The letter index (0 = `a` .. 7 = `h`).
    pub fn letter(&self) -> u8 {
        self.letter
    }

    /// Whether this sub-block is inside the 1000-sub-block experiment space.
    pub fn in_experiment_space(&self) -> bool {
        self.linear() < EXPERIMENT_SUB_BLOCKS
    }

    /// The `/11` prefix this sub-block names.
    pub fn prefix(&self) -> Prefix {
        let octet = SLASH8_FIRST_OCTETS[self.block as usize - 1];
        let bits = (octet as u32) << 24 | (self.letter as u32) << 21;
        Prefix::new(bits.into(), 11)
    }

    /// Iterates over the 1000 sub-blocks of the experiment address space in
    /// linear order (`1a`, `1b`, …, `125h`).
    pub fn experiment_space() -> impl Iterator<Item = SubBlock> {
        (0..EXPERIMENT_SUB_BLOCKS).map(|i| SubBlock::from_linear(i).expect("index in range"))
    }
}

impl fmt::Display for SubBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.block, (b'a' + self.letter) as char)
    }
}

impl FromStr for SubBlock {
    type Err = SubBlockError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let split = s
            .char_indices()
            .find(|(_, c)| c.is_ascii_alphabetic())
            .map(|(i, _)| i)
            .ok_or_else(|| SubBlockError::Malformed(s.to_owned()))?;
        let (num, letter) = s.split_at(split);
        let block: u16 = num
            .parse()
            .map_err(|_| SubBlockError::Malformed(s.to_owned()))?;
        let letter = match letter.as_bytes() {
            [c @ b'a'..=b'h'] => c - b'a',
            _ => return Err(SubBlockError::Malformed(s.to_owned())),
        };
        SubBlock::new(block, letter)
    }
}

/// An inclusive range of sub-blocks in linear order, written `1a-13d` in the
/// paper's allocation tables.
///
/// # Examples
///
/// ```
/// use infilter_net::SubBlockRange;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let r: SubBlockRange = "1a-13d".parse()?;
/// assert_eq!(r.len(), 100); // each Dagflow EIA set is 100 sub-blocks
/// assert_eq!(r.to_string(), "1a-13d");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubBlockRange {
    first: SubBlock,
    last: SubBlock,
}

impl SubBlockRange {
    /// Creates an inclusive range.
    ///
    /// # Errors
    ///
    /// Returns [`SubBlockError::EmptyRange`] if `last` precedes `first` in
    /// linear order.
    pub fn new(first: SubBlock, last: SubBlock) -> Result<SubBlockRange, SubBlockError> {
        if last.linear() < first.linear() {
            return Err(SubBlockError::EmptyRange(first, last));
        }
        Ok(SubBlockRange { first, last })
    }

    /// The first sub-block of the range.
    pub fn first(&self) -> SubBlock {
        self.first
    }

    /// The last sub-block of the range (inclusive).
    pub fn last(&self) -> SubBlock {
        self.last
    }

    /// Number of sub-blocks covered.
    pub fn len(&self) -> usize {
        self.last.linear() - self.first.linear() + 1
    }

    /// Ranges are never empty by construction; provided for symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `sb` falls inside the range.
    pub fn contains(&self, sb: SubBlock) -> bool {
        (self.first.linear()..=self.last.linear()).contains(&sb.linear())
    }

    /// Iterates over the sub-blocks of the range in linear order.
    pub fn iter(&self) -> impl Iterator<Item = SubBlock> {
        (self.first.linear()..=self.last.linear())
            .map(|i| SubBlock::from_linear(i).expect("range validated at construction"))
    }

    /// The `/11` prefixes of every sub-block in the range.
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.iter().map(|sb| sb.prefix()).collect()
    }
}

impl fmt::Display for SubBlockRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.first, self.last)
    }
}

impl FromStr for SubBlockRange {
    type Err = SubBlockError;

    /// Parses `first-last` (e.g. `13e-25h`); a single sub-block (`13c`)
    /// parses as a one-element range.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('-') {
            Some((a, b)) => SubBlockRange::new(a.trim().parse()?, b.trim().parse()?),
            None => {
                let sb: SubBlock = s.trim().parse()?;
                SubBlockRange::new(sb, sb)
            }
        }
    }
}

/// Errors from sub-block construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubBlockError {
    /// Block number was zero or exceeded 143.
    BlockOutOfRange(u16),
    /// Letter index exceeded 7 (`h`).
    LetterOutOfRange(u8),
    /// Linear index exceeded 1143.
    LinearOutOfRange(usize),
    /// String did not match `<number><letter>`.
    Malformed(String),
    /// Range end preceded range start.
    EmptyRange(SubBlock, SubBlock),
}

impl fmt::Display for SubBlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubBlockError::BlockOutOfRange(b) => write!(f, "block number {b} outside 1..=143"),
            SubBlockError::LetterOutOfRange(l) => write!(f, "letter index {l} outside 0..=7"),
            SubBlockError::LinearOutOfRange(i) => write!(f, "linear index {i} outside 0..1144"),
            SubBlockError::Malformed(s) => write!(f, "malformed sub-block `{s}`"),
            SubBlockError::EmptyRange(a, b) => write!(f, "range {a}-{b} is empty"),
        }
    }
}

impl std::error::Error for SubBlockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_143_blocks_and_1144_sub_blocks() {
        assert_eq!(SLASH8_FIRST_OCTETS.len(), 143);
        assert_eq!(TOTAL_SUB_BLOCKS, 1144);
        // Strictly increasing, all publicly routable (not 0/10/127/224+).
        assert!(SLASH8_FIRST_OCTETS.windows(2).all(|w| w[0] < w[1]));
        assert!(!SLASH8_FIRST_OCTETS.contains(&10));
        assert!(!SLASH8_FIRST_OCTETS.contains(&127));
        assert!(SLASH8_FIRST_OCTETS.iter().all(|&o| o < 224));
    }

    #[test]
    fn paper_notation_examples() {
        // "3.0/11 would be represented by 1a, 3.32/11 by 1b, 4.64/11 by 2c,
        //  9.0/11 by 5a, ... 204.224/11 by 125h."
        let cases = [
            ("1a", "3.0.0.0/11"),
            ("1b", "3.32.0.0/11"),
            ("2c", "4.64.0.0/11"),
            ("5a", "9.0.0.0/11"),
            ("125h", "204.224.0.0/11"),
        ];
        for (name, prefix) in cases {
            let sb: SubBlock = name.parse().unwrap();
            assert_eq!(sb.prefix().to_string(), prefix, "sub-block {name}");
            assert_eq!(sb.to_string(), name);
        }
    }

    #[test]
    fn experiment_space_is_first_1000() {
        let all: Vec<SubBlock> = SubBlock::experiment_space().collect();
        assert_eq!(all.len(), 1000);
        assert_eq!(all[0].to_string(), "1a");
        assert_eq!(all[999].to_string(), "125h");
        assert!(all.iter().all(|sb| sb.in_experiment_space()));
        let beyond = SubBlock::from_linear(1000).unwrap();
        assert_eq!(beyond.to_string(), "126a");
        assert!(!beyond.in_experiment_space());
    }

    #[test]
    fn linear_round_trip() {
        for i in 0..TOTAL_SUB_BLOCKS {
            let sb = SubBlock::from_linear(i).unwrap();
            assert_eq!(sb.linear(), i);
            let reparsed: SubBlock = sb.to_string().parse().unwrap();
            assert_eq!(reparsed, sb);
        }
        assert!(SubBlock::from_linear(TOTAL_SUB_BLOCKS).is_err());
    }

    #[test]
    fn rejects_malformed_notation() {
        assert!("0a".parse::<SubBlock>().is_err());
        assert!("144a".parse::<SubBlock>().is_err());
        assert!("12i".parse::<SubBlock>().is_err());
        assert!("12".parse::<SubBlock>().is_err());
        assert!("ab".parse::<SubBlock>().is_err());
        assert!("".parse::<SubBlock>().is_err());
    }

    #[test]
    fn dagflow_source1_allocation_is_100_blocks() {
        // Table 2/3: Dagflow source 1 owns 1a-13d = 100 sub-blocks.
        let r: SubBlockRange = "1a-13d".parse().unwrap();
        assert_eq!(r.len(), 100);
        assert!(r.contains("13b".parse().unwrap()));
        assert!(r.contains("13d".parse().unwrap()));
        assert!(!r.contains("13e".parse().unwrap()));
        // And source 2 owns 13e-25h.
        let r2: SubBlockRange = "13e-25h".parse().unwrap();
        assert_eq!(r2.len(), 100);
        assert_eq!(r2.first().to_string(), "13e");
    }

    #[test]
    fn single_sub_block_range() {
        let r: SubBlockRange = "13c".parse().unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.to_string(), "13c-13c");
    }

    #[test]
    fn reversed_range_rejected() {
        assert!(matches!(
            "13d-1a".parse::<SubBlockRange>(),
            Err(SubBlockError::EmptyRange(_, _))
        ));
    }

    #[test]
    fn prefixes_do_not_overlap_across_space() {
        // Spot-check: consecutive sub-blocks within a /8 tile it exactly.
        let block9: Vec<Prefix> = (0..8)
            .map(|l| SubBlock::new(5, l).unwrap().prefix())
            .collect();
        for w in block9.windows(2) {
            assert_eq!(u32::from(w[0].last()) + 1, u32::from(w[1].first()));
        }
        assert_eq!(block9[0].first().to_string(), "9.0.0.0");
        assert_eq!(block9[7].last().to_string(), "9.255.255.255");
    }
}
