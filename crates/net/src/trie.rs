use std::net::Ipv4Addr;

use crate::Prefix;

/// A binary trie keyed by IPv4 prefixes with longest-prefix matching.
///
/// This is the shared substrate for the EIA sets of `infilter-core` and the
/// RIBs of `infilter-bgp`. Nodes exist per prefix bit; each node may carry a
/// value. [`PrefixTrie::lookup`] walks the address bits and returns the value
/// attached to the deepest (most specific) matching prefix, which is exactly
/// the paper's "4.2.101.0/24 is more specific than 4.0.0.0/8" rule.
///
/// # Examples
///
/// ```
/// use infilter_net::PrefixTrie;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = PrefixTrie::new();
/// t.insert("0.0.0.0/0".parse()?, 0u32);
/// t.insert("10.0.0.0/8".parse()?, 1);
/// t.insert("10.96.0.0/11".parse()?, 2);
///
/// assert_eq!(t.lookup("10.100.1.1".parse()?).map(|(_, v)| *v), Some(2));
/// assert_eq!(t.lookup("10.1.1.1".parse()?).map(|(_, v)| *v), Some(1));
/// assert_eq!(t.lookup("11.1.1.1".parse()?).map(|(_, v)| *v), Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    children: [Option<u32>; 2],
    value: Option<(Prefix, V)>,
}

impl<V> Node<V> {
    fn empty() -> Node<V> {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> PrefixTrie<V> {
        PrefixTrie::with_capacity(0)
    }

    /// Creates an empty trie with arena space for `nodes` trie nodes, so
    /// bulk loads (RIB dumps, EIA preloads) avoid re-allocating the arena.
    /// A prefix of length `L` needs at most `L` nodes beyond the root;
    /// shared leading bits need fewer.
    pub fn with_capacity(nodes: usize) -> PrefixTrie<V> {
        let mut arena = Vec::with_capacity(nodes.saturating_add(1));
        arena.push(Node::empty());
        PrefixTrie {
            nodes: arena,
            len: 0,
        }
    }

    /// Node arena slots allocated (including the root).
    pub fn node_capacity(&self) -> usize {
        self.nodes.capacity()
    }

    /// Nodes currently in the arena (including the root and interior
    /// nodes left behind by [`PrefixTrie::remove`]). One node exists per
    /// distinct stored prefix bit, so this tracks the structural — not
    /// just the prefix-count — size of the trie.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident bytes of the node arena (allocated capacity,
    /// not just occupied nodes — the number an operator watching memory
    /// growth actually cares about).
    pub fn approx_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<V>>()
    }

    /// Releases excess arena capacity left over from bulk builds, so a
    /// write-side trie stops holding peak-capacity allocations between
    /// republishes. Call after bulk loads (EIA preloads, RIB dumps).
    pub fn shrink_to_fit(&mut self) {
        self.nodes.shrink_to_fit();
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if the exact
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = bit_at(prefix.bits(), depth);
            node = match self.nodes[node].children[bit] {
                Some(c) => c as usize,
                None => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node::empty());
                    self.nodes[node].children[bit] = Some(idx);
                    idx as usize
                }
            };
        }
        let old = self.nodes[node].value.replace((prefix, value));
        match old {
            Some((_, v)) => Some(v),
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// Removes the exact prefix, returning its value if present.
    ///
    /// Interior nodes are not reclaimed; the trie is optimised for the
    /// insert-heavy, rarely-shrinking workloads of RIBs and EIA sets.
    pub fn remove(&mut self, prefix: Prefix) -> Option<V> {
        let node = self.find_node(prefix)?;
        let taken = self.nodes[node].value.take();
        taken.map(|(_, v)| {
            self.len -= 1;
            v
        })
    }

    /// Returns the value stored at exactly `prefix`, if any.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        let node = self.find_node(prefix)?;
        match &self.nodes[node].value {
            Some((p, v)) if *p == prefix => Some(v),
            _ => None,
        }
    }

    /// Returns a mutable reference to the value stored at exactly `prefix`.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut V> {
        let node = self.find_node(prefix)?;
        match &mut self.nodes[node].value {
            Some((p, v)) if *p == prefix => Some(v),
            _ => None,
        }
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, together with its value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Prefix, &V)> {
        let bits = u32::from(addr);
        let mut node = 0usize;
        let mut best: Option<(Prefix, &V)> = None;
        for depth in 0..=32u8 {
            if let Some((p, v)) = &self.nodes[node].value {
                best = Some((*p, v));
            }
            if depth == 32 {
                break;
            }
            match self.nodes[node].children[bit_at(bits, depth)] {
                Some(c) => node = c as usize,
                None => break,
            }
        }
        best
    }

    /// Creates a [`TrieWalker`] for repeated lookups that share path work
    /// between consecutive addresses. Feed it a batch sorted by address and
    /// each lookup only descends the bits that differ from the previous
    /// one; unsorted input still returns correct results.
    pub fn walker(&self) -> TrieWalker<'_, V> {
        TrieWalker {
            trie: self,
            path: [0; 33],
            path_len: 0,
            best: [(0, 0); 33],
            best_len: 0,
            prev_bits: 0,
            primed: false,
        }
    }

    /// All stored prefixes that contain `addr`, yielded lazily from least
    /// to most specific. No allocation: callers that only want the first
    /// match (or to short-circuit) pay for exactly the nodes they walk.
    pub fn matches(&self, addr: Ipv4Addr) -> Matches<'_, V> {
        Matches {
            trie: self,
            bits: u32::from(addr),
            node: Some(0),
            depth: 0,
        }
    }

    /// Iterates over all `(prefix, value)` pairs in depth-first order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        let mut stack = vec![0usize];
        std::iter::from_fn(move || {
            while let Some(node) = stack.pop() {
                for child in self.nodes[node].children.iter().rev().flatten() {
                    stack.push(*child as usize);
                }
                if let Some((p, v)) = &self.nodes[node].value {
                    return Some((*p, v));
                }
            }
            None
        })
    }

    fn find_node(&self, prefix: Prefix) -> Option<usize> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            node = self.nodes[node].children[bit_at(prefix.bits(), depth)]? as usize;
        }
        Some(node)
    }
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

impl<V> FromIterator<(Prefix, V)> for PrefixTrie<V> {
    fn from_iter<I: IntoIterator<Item = (Prefix, V)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

impl<V> Extend<(Prefix, V)> for PrefixTrie<V> {
    fn extend<I: IntoIterator<Item = (Prefix, V)>>(&mut self, iter: I) {
        for (p, v) in iter {
            self.insert(p, v);
        }
    }
}

/// Lazy iterator over the prefixes containing one address, least specific
/// first. Created by [`PrefixTrie::matches`].
#[derive(Debug, Clone)]
pub struct Matches<'a, V> {
    trie: &'a PrefixTrie<V>,
    bits: u32,
    node: Option<usize>,
    depth: u8,
}

impl<'a, V> Iterator for Matches<'a, V> {
    type Item = (Prefix, &'a V);

    fn next(&mut self) -> Option<(Prefix, &'a V)> {
        loop {
            let node = self.node?;
            let hit = self.trie.nodes[node].value.as_ref().map(|(p, v)| (*p, v));
            self.node = if self.depth == 32 {
                None
            } else {
                let bit = bit_at(self.bits, self.depth);
                self.depth += 1;
                self.trie.nodes[node].children[bit].map(|c| c as usize)
            };
            if hit.is_some() {
                return hit;
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // At most one prefix per remaining depth (plus the current node).
        (
            0,
            Some(self.node.map_or(0, |_| usize::from(33 - self.depth))),
        )
    }
}

/// Incremental longest-prefix matcher that reuses the descent path between
/// consecutive lookups. Created by [`PrefixTrie::walker`].
///
/// Two consecutive addresses sharing their first `k` bits re-enter the trie
/// at depth `k` instead of the root, so a batch sorted by address costs
/// roughly one node visit per *differing* bit instead of one per prefix
/// bit. Results are identical to [`PrefixTrie::lookup`] for any input
/// order; sorting only affects speed.
///
/// The walker borrows the trie immutably, so the trie cannot be mutated
/// while a walker is alive. All walker state lives in fixed-size inline
/// arrays (a descent is at most 33 nodes deep), so creating one per batch
/// allocates nothing.
#[derive(Debug)]
pub struct TrieWalker<'a, V> {
    trie: &'a PrefixTrie<V>,
    /// Node indices along the current descent; `path[d]` matched the first
    /// `d` address bits (`path[0]` is the root).
    path: [u32; 33],
    path_len: usize,
    /// `(bits_matched, node)` for path nodes carrying a value, shallowest
    /// first — the live longest-prefix candidates.
    best: [(u8, u32); 33],
    best_len: usize,
    prev_bits: u32,
    primed: bool,
}

impl<'a, V> TrieWalker<'a, V> {
    /// Longest-prefix match for `addr`, resuming from the previous
    /// lookup's path where the leading bits agree.
    pub fn lookup(&mut self, addr: Ipv4Addr) -> Option<(Prefix, &'a V)> {
        let bits = u32::from(addr);
        if self.primed {
            // A path node that matched `d` bits stays valid iff the new
            // address agrees on those `d` bits, i.e. `d <= shared`.
            let shared = (self.prev_bits ^ bits).leading_zeros().min(32) as usize;
            self.path_len = self.path_len.min(shared + 1);
            while self.best_len > 0 && self.best[self.best_len - 1].0 as usize >= self.path_len {
                self.best_len -= 1;
            }
        } else {
            self.primed = true;
            self.path[0] = 0;
            self.path_len = 1;
            if self.trie.nodes[0].value.is_some() {
                self.best[0] = (0, 0);
                self.best_len = 1;
            }
        }
        self.prev_bits = bits;
        let trie = self.trie;
        for depth in (self.path_len - 1)..32 {
            let node = self.path[self.path_len - 1] as usize;
            match trie.nodes[node].children[bit_at(bits, depth as u8)] {
                Some(child) => {
                    self.path[self.path_len] = child;
                    self.path_len += 1;
                    if trie.nodes[child as usize].value.is_some() {
                        self.best[self.best_len] = (depth as u8 + 1, child);
                        self.best_len += 1;
                    }
                }
                None => break,
            }
        }
        if self.best_len == 0 {
            return None;
        }
        let (_, node) = self.best[self.best_len - 1];
        trie.nodes[node as usize]
            .value
            .as_ref()
            .map(|(p, v)| (*p, v))
    }
}

fn bit_at(bits: u32, depth: u8) -> usize {
    ((bits >> (31 - depth)) & 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_lookup_is_none() {
        let t: PrefixTrie<()> = PrefixTrie::new();
        assert!(t.lookup(a("1.2.3.4")).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn exact_get_and_replace() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn longest_prefix_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("4.0.0.0/8"), "coarse");
        t.insert(p("4.2.101.0/24"), "fine");
        assert_eq!(t.lookup(a("4.2.101.20")).unwrap().1, &"fine");
        assert_eq!(t.lookup(a("4.2.102.20")).unwrap().1, &"coarse");
        assert!(t.lookup(a("5.0.0.1")).is_none());
    }

    #[test]
    fn default_route_catches_all() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::default_route(), 0);
        assert_eq!(t.lookup(a("203.0.113.9")).unwrap().1, &0);
    }

    #[test]
    fn host_route_is_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("9.0.0.0/8"), 8);
        t.insert(p("9.9.9.9/32"), 32);
        assert_eq!(t.lookup(a("9.9.9.9")).unwrap().1, &32);
        assert_eq!(t.lookup(a("9.9.9.8")).unwrap().1, &8);
    }

    #[test]
    fn remove_unshadows() {
        let mut t = PrefixTrie::new();
        t.insert(p("8.0.0.0/8"), "outer");
        t.insert(p("8.8.0.0/16"), "inner");
        assert_eq!(t.remove(p("8.8.0.0/16")), Some("inner"));
        assert_eq!(t.lookup(a("8.8.8.8")).unwrap().1, &"outer");
        assert_eq!(t.remove(p("8.8.0.0/16")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn matches_orders_least_to_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.96.0.0/11"), 11);
        let m: Vec<u8> = t.matches(a("10.100.0.1")).map(|(_, v)| *v).collect();
        assert_eq!(m, vec![0, 8, 11]);
    }

    #[test]
    fn matches_is_lazy_and_short_circuits() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.96.0.0/11"), 11);
        let mut it = t.matches(a("10.100.0.1"));
        assert_eq!(it.next().map(|(_, v)| *v), Some(0));
        // First match found without walking the rest of the path; the
        // iterator can still resume.
        assert_eq!(it.next().map(|(_, v)| *v), Some(8));
        assert_eq!(it.next().map(|(_, v)| *v), Some(11));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
        // Lookup and matches agree: last match IS the longest match.
        assert_eq!(
            t.matches(a("10.100.0.1")).last().map(|(_, v)| *v),
            t.lookup(a("10.100.0.1")).map(|(_, v)| *v)
        );
        // A miss yields nothing.
        assert_eq!(t.matches(a("11.0.0.1")).count(), 1); // only the default route
    }

    #[test]
    fn matches_on_empty_trie_is_empty() {
        let t: PrefixTrie<u8> = PrefixTrie::new();
        assert_eq!(t.matches(a("1.2.3.4")).count(), 0);
        let (lo, hi) = t.matches(a("1.2.3.4")).size_hint();
        assert_eq!(lo, 0);
        assert!(hi.unwrap() >= 1);
    }

    #[test]
    fn with_capacity_preallocates_arena() {
        let mut t: PrefixTrie<u8> = PrefixTrie::with_capacity(64);
        let base = t.node_capacity();
        assert!(base >= 65);
        // A /32 plus a /24 sharing no bits need at most 56 new nodes:
        // well within the reservation, so the arena never regrows.
        t.insert(p("10.0.0.1/32"), 1);
        t.insert(p("200.1.2.0/24"), 2);
        assert_eq!(t.node_capacity(), base);
        assert_eq!(t.lookup(a("10.0.0.1")).unwrap().1, &1);
    }

    #[test]
    fn iter_visits_every_prefix() {
        let prefixes = ["0.0.0.0/0", "1.0.0.0/8", "1.128.0.0/9", "200.1.2.0/24"];
        let t: PrefixTrie<u8> = prefixes.iter().map(|s| (p(s), 1)).collect();
        let mut seen: Vec<String> = t.iter().map(|(pfx, _)| pfx.to_string()).collect();
        seen.sort();
        let mut want: Vec<String> = prefixes.iter().map(|s| s.to_string()).collect();
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn walker_agrees_with_lookup_in_any_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0u32);
        t.insert(p("3.0.0.0/11"), 1);
        t.insert(p("3.32.0.0/11"), 2);
        t.insert(p("3.33.0.0/16"), 3);
        t.insert(p("3.33.0.9/32"), 4);
        t.insert(p("10.0.0.0/8"), 5);
        t.insert(p("10.96.0.0/11"), 6);

        // Deterministic pseudo-random address stream spanning hits, misses
        // (within the default route) and repeats.
        let mut addrs: Vec<Ipv4Addr> = Vec::new();
        let mut x = 0x1234_5678u32;
        for _ in 0..512 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let base = match x % 4 {
                0 => 0x0300_0000,
                1 => 0x0320_0000,
                2 => 0x0A60_0000,
                _ => 0xC000_0000,
            };
            addrs.push(Ipv4Addr::from(base + (x >> 16 & 0xFFFF)));
        }
        addrs.push(a("3.33.0.9"));
        addrs.push(a("3.33.0.9"));

        // Unsorted: correctness must not depend on input order.
        let mut w = t.walker();
        for &addr in &addrs {
            assert_eq!(
                w.lookup(addr).map(|(pfx, v)| (pfx, *v)),
                t.lookup(addr).map(|(pfx, v)| (pfx, *v)),
                "walker diverged at {addr}"
            );
        }

        // Sorted: the intended fast path takes the same answers.
        addrs.sort();
        let mut w = t.walker();
        for &addr in &addrs {
            assert_eq!(
                w.lookup(addr).map(|(pfx, v)| (pfx, *v)),
                t.lookup(addr).map(|(pfx, v)| (pfx, *v)),
                "sorted walker diverged at {addr}"
            );
        }
    }

    #[test]
    fn walker_on_empty_trie_finds_nothing() {
        let t: PrefixTrie<u8> = PrefixTrie::new();
        let mut w = t.walker();
        assert!(w.lookup(a("1.2.3.4")).is_none());
        assert!(w.lookup(a("1.2.3.4")).is_none());
        assert!(w.lookup(a("200.0.0.1")).is_none());
    }

    #[test]
    fn walker_unshadows_when_leaving_a_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("8.0.0.0/8"), "outer");
        t.insert(p("8.8.0.0/16"), "inner");
        let mut w = t.walker();
        assert_eq!(w.lookup(a("8.8.1.1")).unwrap().1, &"inner");
        // Next address shares only /8: the /16 candidate must be dropped.
        assert_eq!(w.lookup(a("8.9.1.1")).unwrap().1, &"outer");
        assert_eq!(w.lookup(a("8.8.2.2")).unwrap().1, &"inner");
        assert!(w.lookup(a("9.0.0.1")).is_none());
    }

    #[test]
    fn node_accounting_and_shrink() {
        let mut t: PrefixTrie<u8> = PrefixTrie::with_capacity(1024);
        assert_eq!(t.node_count(), 1, "root only");
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.node_count(), 9, "root + one node per prefix bit");
        let peak = t.approx_bytes();
        t.shrink_to_fit();
        assert!(t.approx_bytes() <= peak);
        assert!(t.node_capacity() >= t.node_count());
        // Shrinking is purely an allocation affair: lookups are unchanged.
        assert_eq!(t.lookup(a("10.1.1.1")).unwrap().1, &1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = PrefixTrie::new();
        t.insert(p("20.0.0.0/8"), vec![1]);
        t.get_mut(p("20.0.0.0/8")).unwrap().push(2);
        assert_eq!(t.get(p("20.0.0.0/8")), Some(&vec![1, 2]));
    }
}
