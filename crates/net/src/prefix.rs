use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A validated IPv4 CIDR prefix.
///
/// The network address is always stored in canonical form: host bits below
/// the mask are zero. `10.1.2.3/8` therefore parses to `10.0.0.0/8`.
///
/// # Examples
///
/// ```
/// use infilter_net::Prefix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p: Prefix = "192.168.0.0/16".parse()?;
/// assert!(p.contains("192.168.44.5".parse()?));
/// assert!(!p.contains("192.169.0.1".parse()?));
/// assert_eq!(p.to_string(), "192.168.0.0/16");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix from a network address and a mask length, canonicalising
    /// any set host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        let bits = u32::from(addr) & mask(len);
        Prefix { bits, len }
    }

    /// The prefix covering the entire IPv4 address space (`0.0.0.0/0`).
    pub fn default_route() -> Prefix {
        Prefix { bits: 0, len: 0 }
    }

    /// Creates the `/32` host prefix for a single address.
    pub fn host(addr: Ipv4Addr) -> Prefix {
        Prefix::new(addr, 32)
    }

    /// The canonical network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The mask length in bits.
    #[allow(clippy::len_without_is_empty)] // a prefix length, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    pub fn is_default_route(&self) -> bool {
        self.len == 0
    }

    /// The network address as a raw big-endian `u32`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of addresses covered by the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Tests whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & mask(self.len)) == self.bits
    }

    /// Tests whether `other` is fully contained in (or equal to) this prefix.
    pub fn covers(&self, other: Prefix) -> bool {
        other.len >= self.len && (other.bits & mask(self.len)) == self.bits
    }

    /// The first address of the prefix.
    pub fn first(&self) -> Ipv4Addr {
        self.network()
    }

    /// The last address of the prefix.
    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits | !mask(self.len))
    }

    /// Truncates the prefix to a shorter length (e.g. an address's `/24`
    /// subnet for the paper's traceroute aggregation step).
    ///
    /// # Panics
    ///
    /// Panics if `len` is longer than the current length.
    pub fn truncate(&self, len: u8) -> Prefix {
        assert!(
            len <= self.len,
            "cannot truncate /{} prefix to longer /{len}",
            self.len
        );
        Prefix::new(self.network(), len)
    }

    /// Splits the prefix into `2^extra_bits` equal child prefixes.
    ///
    /// Used by the Table 1 scheme to break each `/8` into eight `/11`
    /// sub-blocks.
    ///
    /// # Panics
    ///
    /// Panics if the resulting length would exceed 32 bits.
    pub fn split(&self, extra_bits: u8) -> impl Iterator<Item = Prefix> + '_ {
        let new_len = self.len + extra_bits;
        assert!(new_len <= 32, "split would exceed /32");
        let step = 1u64 << (32 - new_len);
        (0..(1u64 << extra_bits)).map(move |i| Prefix {
            bits: self.bits + (i * step) as u32,
            len: new_len,
        })
    }

    /// Draws a uniformly random address from inside the prefix.
    pub fn random_addr<R: Rng + ?Sized>(&self, rng: &mut R) -> Ipv4Addr {
        let offset = rng.gen_range(0..self.size());
        Ipv4Addr::from(self.bits + offset as u32)
    }

    /// Returns the `i`-th address of the prefix, wrapping around its size.
    ///
    /// Handy for deterministic address assignment in tests and workload
    /// generators.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        Ipv4Addr::from(self.bits + (i % self.size()) as u32)
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Error returned when parsing a [`Prefix`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// The address part was not a valid dotted-quad IPv4 address.
    InvalidAddr(String),
    /// The length part was missing or not an integer.
    InvalidLen(String),
    /// The length was greater than 32.
    LenOutOfRange(u8),
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::InvalidAddr(s) => write!(f, "invalid IPv4 address `{s}`"),
            ParsePrefixError::InvalidLen(s) => write!(f, "invalid prefix length `{s}`"),
            ParsePrefixError::LenOutOfRange(l) => write!(f, "prefix length {l} exceeds 32"),
        }
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    /// Parses `a.b.c.d/len`; a bare address parses as a `/32` host prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = match s.split_once('/') {
            Some((a, l)) => (a, Some(l)),
            None => (s, None),
        };
        let addr: Ipv4Addr = addr_part
            .parse()
            .map_err(|_| ParsePrefixError::InvalidAddr(addr_part.to_owned()))?;
        let len: u8 = match len_part {
            Some(l) => l
                .parse()
                .map_err(|_| ParsePrefixError::InvalidLen(l.to_owned()))?,
            None => 32,
        };
        if len > 32 {
            return Err(ParsePrefixError::LenOutOfRange(len));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl From<Ipv4Addr> for Prefix {
    fn from(addr: Ipv4Addr) -> Prefix {
        Prefix::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalises_host_bits() {
        let p = Prefix::new("10.1.2.3".parse().unwrap(), 8);
        assert_eq!(p.network(), "10.0.0.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn parses_and_displays_round_trip() {
        for s in ["0.0.0.0/0", "4.2.101.0/24", "214.96.0.0/11", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn bare_address_parses_as_host_prefix() {
        let p: Prefix = "9.8.7.6".parse().unwrap();
        assert_eq!(p.len(), 32);
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            "300.0.0.0/8".parse::<Prefix>(),
            Err(ParsePrefixError::InvalidAddr(_))
        ));
        assert!(matches!(
            "1.0.0.0/x".parse::<Prefix>(),
            Err(ParsePrefixError::InvalidLen(_))
        ));
        assert!(matches!(
            "1.0.0.0/40".parse::<Prefix>(),
            Err(ParsePrefixError::LenOutOfRange(40))
        ));
    }

    #[test]
    fn containment() {
        let p: Prefix = "192.168.0.0/16".parse().unwrap();
        assert!(p.contains("192.168.255.255".parse().unwrap()));
        assert!(!p.contains("192.167.255.255".parse().unwrap()));
        assert!(p.covers("192.168.4.0/24".parse().unwrap()));
        assert!(!p.covers("192.0.0.0/8".parse().unwrap()));
        assert!(p.covers(p));
    }

    #[test]
    fn default_route_contains_everything() {
        let d = Prefix::default_route();
        assert!(d.contains("255.255.255.255".parse().unwrap()));
        assert!(d.contains("0.0.0.0".parse().unwrap()));
        assert_eq!(d.size(), 1 << 32);
    }

    #[test]
    fn split_slash8_into_slash11_matches_paper_example() {
        // Paper section 6.2: 214/8 splits into 214.0/11, 214.32/11, ... 214.224/11.
        let p: Prefix = "214.0.0.0/8".parse().unwrap();
        let subs: Vec<Prefix> = p.split(3).collect();
        assert_eq!(subs.len(), 8);
        let expect = [
            "214.0.0.0/11",
            "214.32.0.0/11",
            "214.64.0.0/11",
            "214.96.0.0/11",
            "214.128.0.0/11",
            "214.160.0.0/11",
            "214.192.0.0/11",
            "214.224.0.0/11",
        ];
        for (s, e) in subs.iter().zip(expect) {
            assert_eq!(s.to_string(), e);
        }
        // Sub-block 214.32/11 covers 214.32.x.y through 214.63.x.y.
        assert_eq!(subs[1].first(), "214.32.0.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(
            subs[1].last(),
            "214.63.255.255".parse::<Ipv4Addr>().unwrap()
        );
    }

    #[test]
    fn truncate_to_subnet() {
        let p = Prefix::host("10.20.30.40".parse().unwrap());
        assert_eq!(p.truncate(24).to_string(), "10.20.30.0/24");
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn truncate_longer_panics() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let _ = p.truncate(16);
    }

    #[test]
    fn random_addr_stays_inside() {
        let mut rng = rand::thread_rng();
        let p: Prefix = "172.16.0.0/12".parse().unwrap();
        for _ in 0..1000 {
            assert!(p.contains(p.random_addr(&mut rng)));
        }
    }

    #[test]
    fn nth_wraps() {
        let p: Prefix = "10.0.0.0/30".parse().unwrap();
        assert_eq!(p.nth(0), p.nth(4));
        assert_eq!(p.nth(5), "10.0.0.1".parse::<Ipv4Addr>().unwrap());
    }
}
