use std::net::Ipv4Addr;

use crate::{Prefix, PrefixTrie};

/// Number of direct-index root slots: one per possible /16.
const ROOT_SLOTS: usize = 1 << 16;

/// Tag bit distinguishing child pointers from leaf results in a slot entry.
const CHILD_FLAG: u32 = 0x8000_0000;

/// Leaf result meaning "no stored prefix covers this address".
const NO_MATCH: u32 = 0x7FFF_FFFF;

/// A frozen, cache-dense longest-prefix-match structure compiled from a
/// [`PrefixTrie`].
///
/// The dynamic trie resolves one *bit* per node — up to 32 dependent loads
/// per address. `FrozenLpm` trades mutability for density: a direct-index
/// root table covers the first 16 address bits in a single load, and the
/// remaining bits resolve through at most two stride-8 nodes laid out in
/// contiguous arrays (tree-bitmap style: a 256-bit child bitmap selects
/// sub-nodes, a 256-bit run bitmap compresses the leaf-pushed results).
/// Any IPv4 lookup therefore costs at most three table touches before the
/// final value read, regardless of how many prefixes are stored.
///
/// The structure is immutable by construction — there is no insert. The
/// intended pattern is read/write splitting: mutate a [`PrefixTrie`]
/// (adoptions, reloads), then [`FrozenLpm::compile`] a fresh frozen view
/// and publish it to readers. Results are identical to
/// [`PrefixTrie::lookup`] on the source trie for every address, including
/// default routes, host routes, and shadowed nested prefixes.
///
/// # Examples
///
/// ```
/// use infilter_net::{FrozenLpm, PrefixTrie};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = PrefixTrie::new();
/// t.insert("0.0.0.0/0".parse()?, 0u32);
/// t.insert("10.0.0.0/8".parse()?, 1);
/// t.insert("10.96.0.0/11".parse()?, 2);
///
/// let lpm = FrozenLpm::compile(&t);
/// assert_eq!(lpm.lookup("10.100.1.1".parse()?).map(|(_, v)| *v), Some(2));
/// assert_eq!(lpm.lookup("10.1.1.1".parse()?).map(|(_, v)| *v), Some(1));
/// assert_eq!(lpm.lookup("11.1.1.1".parse()?).map(|(_, v)| *v), Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenLpm<V> {
    /// Direct-index table over the top 16 address bits. Each entry is
    /// either a leaf result (index into `values`, or [`NO_MATCH`]) or, with
    /// [`CHILD_FLAG`] set, an index into `nodes`.
    root: Vec<u32>,
    /// Stride-8 interior nodes; the children of one node are contiguous.
    nodes: Vec<LpmNode>,
    /// Run-compressed leaf results for all nodes, concatenated.
    leaves: Vec<u32>,
    /// The stored prefixes, parallel to `values`. Split from the values so
    /// value-only lookups touch a dense value column and pay no padding.
    prefixes: Vec<Prefix>,
    /// The stored values leaf results index into.
    values: Vec<V>,
}

/// One stride-8 node: 256 logical slots compressed behind two bitmaps.
///
/// A set bit in `child_bitmap` means the slot descends into
/// `nodes[child_base + rank]` (rank = set child bits below the slot). All
/// other slots resolve to `leaves[leaf_base + rank - 1]` where rank counts
/// `leaf_bitmap` bits at or below the slot: a set bit marks the start of a
/// run of equal leaf-pushed results, so only run boundaries are stored.
/// Bit 0 of `leaf_bitmap` is always set, making every leaf rank ≥ 1.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LpmNode {
    child_bitmap: [u64; 4],
    leaf_bitmap: [u64; 4],
    child_base: u32,
    leaf_base: u32,
}

/// A prefix flattened for compilation: `(network bits, length, result)`.
type Entry = (u32, u8, u32);

/// A node waiting to be filled during the breadth-first build: its
/// preallocated index, the depth its slots start at (16 or 24), the
/// entries with prefixes longer than `depth` under its byte path, and the
/// leaf-pushed best match inherited from shallower levels.
struct Pending {
    node: u32,
    depth: u8,
    entries: Vec<Entry>,
    inherited: u32,
}

impl<V: Clone> FrozenLpm<V> {
    /// Compiles the trie's current contents into a frozen structure.
    ///
    /// Cost is O(prefixes · log prefixes) for the sort plus O(expanded
    /// slots) for the stride tables — milliseconds at a million prefixes —
    /// which the read/write split pays once per publish, not per lookup.
    pub fn compile(trie: &PrefixTrie<V>) -> FrozenLpm<V> {
        let mut pairs: Vec<(Prefix, V)> = trie.iter().map(|(p, v)| (p, v.clone())).collect();
        pairs.sort_unstable_by_key(|(p, _)| (p.bits(), p.len()));
        // Prefix bits are canonical (host bits zero), so sorting by bits
        // groups every subtree into one contiguous range.
        let entries: Vec<Entry> = pairs
            .iter()
            .enumerate()
            .map(|(i, (p, _))| (p.bits(), p.len(), i as u32))
            .collect();
        let (prefixes, values): (Vec<Prefix>, Vec<V>) = pairs.into_iter().unzip();

        let mut root = vec![NO_MATCH; ROOT_SLOTS];
        // Prefixes of length ≤ 16 paint ranges of root slots, shortest
        // first so more-specific prefixes override.
        let mut covering: Vec<Entry> = entries.iter().filter(|e| e.1 <= 16).copied().collect();
        covering.sort_unstable_by_key(|e| e.1);
        for (bits, len, result) in covering {
            let start = (bits >> 16) as usize;
            let span = 1usize << (16 - len);
            root[start..start + span].fill(result);
        }

        let mut nodes: Vec<LpmNode> = Vec::new();
        let mut leaves: Vec<u32> = Vec::new();
        let mut queue: std::collections::VecDeque<Pending> = std::collections::VecDeque::new();

        // Prefixes longer than 16 bits each belong to exactly one root
        // slot; contiguous runs of the sorted entries share it.
        let mut longer = entries.iter().filter(|e| e.1 > 16).copied().peekable();
        while let Some(&(bits, _, _)) = longer.peek() {
            let slot = (bits >> 16) as usize;
            let mut group = Vec::new();
            while let Some(&e) = longer.peek() {
                if (e.0 >> 16) as usize != slot {
                    break;
                }
                group.push(e);
                longer.next();
            }
            let node = nodes.len() as u32;
            nodes.push(LpmNode::placeholder());
            queue.push_back(Pending {
                node,
                depth: 16,
                entries: group,
                inherited: root[slot],
            });
            root[slot] = CHILD_FLAG | node;
        }

        while let Some(p) = queue.pop_front() {
            fill_node(p, &mut nodes, &mut leaves, &mut queue);
        }

        nodes.shrink_to_fit();
        leaves.shrink_to_fit();
        FrozenLpm {
            root,
            nodes,
            leaves,
            prefixes,
            values,
        }
    }
}

impl<V> FrozenLpm<V> {
    /// Longest-prefix match for `addr`: the most specific stored prefix
    /// containing it, with its value. Identical to [`PrefixTrie::lookup`]
    /// on the source trie.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Prefix, &V)> {
        self.lookup_bits(u32::from(addr))
    }

    /// [`FrozenLpm::lookup`] over the raw big-endian address bits — the
    /// form batch pipelines carry in their source-address columns.
    #[inline]
    pub fn lookup_bits(&self, bits: u32) -> Option<(Prefix, &V)> {
        let i = self.resolve_index(bits)?;
        Some((self.prefixes[i], &self.values[i]))
    }

    /// Value-only [`FrozenLpm::lookup_bits`]: skips the matched-prefix read,
    /// so hot paths that only consume the value touch one array fewer.
    #[inline]
    pub fn lookup_value_bits(&self, bits: u32) -> Option<&V> {
        self.resolve_index(bits).map(|i| &self.values[i])
    }

    /// The index of the most specific stored prefix containing `bits`.
    #[inline]
    fn resolve_index(&self, bits: u32) -> Option<usize> {
        let mut entry = self.root[(bits >> 16) as usize];
        if entry & CHILD_FLAG != 0 {
            let node = &self.nodes[(entry & !CHILD_FLAG) as usize];
            entry = node.resolve((bits >> 8) & 0xFF, &self.leaves);
            if entry & CHILD_FLAG != 0 {
                let node = &self.nodes[(entry & !CHILD_FLAG) as usize];
                entry = node.resolve(bits & 0xFF, &self.leaves);
                // A depth-24 node covers address bits 24..32: nothing is
                // deeper than a /32, so this entry is always a leaf.
                debug_assert_eq!(entry & CHILD_FLAG, 0);
            }
        }
        if entry == NO_MATCH {
            None
        } else {
            Some(entry as usize)
        }
    }

    /// Resolves a whole source-address column, invoking `found(i, result)`
    /// for each address in order — the batch feed for grouped phase-A
    /// classification. No sort is needed: every lookup is O(1) memory
    /// touches, so input order does not affect cost.
    pub fn lookup_batch<'a, F>(&'a self, addrs: &[u32], mut found: F)
    where
        F: FnMut(usize, Option<(Prefix, &'a V)>),
    {
        for (i, &bits) in addrs.iter().enumerate() {
            found(i, self.lookup_bits(bits));
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the structure holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Stride-8 interior nodes allocated below the root table.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident bytes across all five arrays (the fixed 256 KiB
    /// root table, nodes, compressed leaves, stored prefixes and values).
    pub fn approx_bytes(&self) -> usize {
        self.root.len() * std::mem::size_of::<u32>()
            + self.nodes.len() * std::mem::size_of::<LpmNode>()
            + self.leaves.len() * std::mem::size_of::<u32>()
            + self.prefixes.len() * std::mem::size_of::<Prefix>()
            + self.values.len() * std::mem::size_of::<V>()
    }

    /// Iterates over all stored `(prefix, value)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        self.prefixes.iter().copied().zip(self.values.iter())
    }
}

impl<V: Clone> From<&PrefixTrie<V>> for FrozenLpm<V> {
    fn from(trie: &PrefixTrie<V>) -> FrozenLpm<V> {
        FrozenLpm::compile(trie)
    }
}

impl LpmNode {
    fn placeholder() -> LpmNode {
        LpmNode {
            child_bitmap: [0; 4],
            leaf_bitmap: [0; 4],
            child_base: 0,
            leaf_base: 0,
        }
    }

    /// Resolves one slot: a child pointer (tagged) or the leaf result.
    #[inline]
    fn resolve(&self, slot: u32, leaves: &[u32]) -> u32 {
        let word = (slot >> 6) as usize;
        let bit = slot & 63;
        let below = 1u64.wrapping_shl(bit) - 1;
        if self.child_bitmap[word] & (1 << bit) != 0 {
            let mut rank = (self.child_bitmap[word] & below).count_ones();
            for w in 0..word {
                rank += self.child_bitmap[w].count_ones();
            }
            CHILD_FLAG | (self.child_base + rank)
        } else {
            // Run-start ranks: bits at or below the slot. Bit 0 is always
            // set, so the rank is ≥ 1 for every slot.
            let mut rank = (self.leaf_bitmap[word] & below).count_ones();
            rank += ((self.leaf_bitmap[word] >> bit) & 1) as u32;
            for w in 0..word {
                rank += self.leaf_bitmap[w].count_ones();
            }
            leaves[(self.leaf_base + rank - 1) as usize]
        }
    }
}

/// Fills one queued node: expands its 256 slots from the inherited result
/// plus covering prefixes (leaf pushing), splits off child groups for
/// still-longer prefixes, and run-compresses the slots into the shared
/// leaf array. Children are appended contiguously and queued.
fn fill_node(
    p: Pending,
    nodes: &mut Vec<LpmNode>,
    leaves: &mut Vec<u32>,
    queue: &mut std::collections::VecDeque<Pending>,
) {
    let Pending {
        node,
        depth,
        entries,
        inherited,
    } = p;
    // This node's slots cover address bits [depth, depth + 8).
    let shift = 24 - depth; // byte position of the slot index within bits
    let mut result = [inherited; 256];

    // Covering prefixes (length ≤ depth + 8) paint slot ranges, shortest
    // first so deeper prefixes override — the same leaf-pushing rule the
    // root table uses.
    let mut covering: Vec<Entry> = entries
        .iter()
        .filter(|e| e.1 <= depth + 8)
        .copied()
        .collect();
    covering.sort_unstable_by_key(|e| e.1);
    for (bits, len, res) in covering {
        let start = ((bits >> shift) & 0xFF) as usize;
        let span = 1usize << (depth + 8 - len);
        result[start..start + span].fill(res);
    }

    // Longer prefixes each belong to exactly one slot; sorted order keeps
    // same-slot entries contiguous in the filtered subsequence.
    let mut child_bitmap = [0u64; 4];
    let child_base = nodes.len() as u32;
    let mut longer = entries
        .iter()
        .filter(|e| e.1 > depth + 8)
        .copied()
        .peekable();
    while let Some(&(bits, _, _)) = longer.peek() {
        let slot = ((bits >> shift) & 0xFF) as usize;
        let mut group = Vec::new();
        while let Some(&e) = longer.peek() {
            if ((e.0 >> shift) & 0xFF) as usize != slot {
                break;
            }
            group.push(e);
            longer.next();
        }
        child_bitmap[slot >> 6] |= 1 << (slot & 63);
        let child = nodes.len() as u32;
        nodes.push(LpmNode::placeholder());
        queue.push_back(Pending {
            node: child,
            depth: depth + 8,
            entries: group,
            inherited: result[slot],
        });
    }

    // Run-compress the expanded slots. Child slots keep their (unused)
    // leaf-pushed value in the run encoding; splitting runs on them would
    // cost leaf entries without changing any lookup.
    let leaf_base = leaves.len() as u32;
    let mut leaf_bitmap = [0u64; 4];
    let mut prev = None;
    for (slot, &res) in result.iter().enumerate() {
        if prev != Some(res) {
            leaf_bitmap[slot >> 6] |= 1 << (slot & 63);
            leaves.push(res);
            prev = Some(res);
        }
    }

    nodes[node as usize] = LpmNode {
        child_bitmap,
        leaf_bitmap,
        child_base,
        leaf_base,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn frozen(prefixes: &[(&str, u32)]) -> (PrefixTrie<u32>, FrozenLpm<u32>) {
        let trie: PrefixTrie<u32> = prefixes.iter().map(|&(s, v)| (p(s), v)).collect();
        let lpm = FrozenLpm::compile(&trie);
        (trie, lpm)
    }

    fn assert_parity(trie: &PrefixTrie<u32>, lpm: &FrozenLpm<u32>, addr: Ipv4Addr) {
        assert_eq!(
            lpm.lookup(addr).map(|(pfx, v)| (pfx, *v)),
            trie.lookup(addr).map(|(pfx, v)| (pfx, *v)),
            "frozen diverged at {addr}"
        );
    }

    #[test]
    fn empty_lookup_is_none() {
        let (_, lpm) = frozen(&[]);
        assert!(lpm.lookup(a("1.2.3.4")).is_none());
        assert!(lpm.is_empty());
        assert_eq!(lpm.node_count(), 0);
    }

    #[test]
    fn short_prefixes_resolve_in_the_root_table() {
        let (trie, lpm) = frozen(&[("0.0.0.0/0", 0), ("10.0.0.0/8", 1), ("10.96.0.0/11", 2)]);
        assert_eq!(lpm.node_count(), 0, "no prefix longer than /16");
        for s in ["10.100.1.1", "10.1.1.1", "11.1.1.1", "255.255.255.255"] {
            assert_parity(&trie, &lpm, a(s));
        }
    }

    #[test]
    fn long_prefixes_descend_stride_nodes() {
        let (trie, lpm) = frozen(&[
            ("4.0.0.0/8", 8),
            ("4.2.101.0/24", 24),
            ("4.2.101.7/32", 32),
            ("4.2.101.8/32", 132),
        ]);
        assert!(lpm.node_count() >= 2);
        for s in [
            "4.2.101.7",
            "4.2.101.8",
            "4.2.101.9",
            "4.2.102.1",
            "4.3.0.1",
            "5.0.0.1",
        ] {
            assert_parity(&trie, &lpm, a(s));
        }
    }

    #[test]
    fn host_route_shadows_and_unshadows() {
        let (trie, lpm) = frozen(&[("9.0.0.0/8", 8), ("9.9.9.9/32", 32)]);
        assert_eq!(lpm.lookup(a("9.9.9.9")).unwrap().1, &32);
        assert_eq!(lpm.lookup(a("9.9.9.8")).unwrap().1, &8);
        assert_parity(&trie, &lpm, a("9.9.9.10"));
    }

    #[test]
    fn adjacent_siblings_keep_their_boundaries() {
        let (trie, lpm) = frozen(&[
            ("3.0.0.0/11", 1),
            ("3.32.0.0/11", 2),
            ("3.33.0.0/16", 3),
            ("3.33.64.0/18", 4),
            ("3.33.128.0/18", 5),
        ]);
        // Probe every /18 boundary inside the /16 plus the /11 edges.
        for bits in [
            0x0300_0000u32,
            0x031F_FFFF,
            0x0320_0000,
            0x0321_0000,
            0x0321_3FFF,
            0x0321_4000,
            0x0321_7FFF,
            0x0321_8000,
            0x0321_BFFF,
            0x0321_C000,
            0x0321_FFFF,
            0x0322_0000,
            0x033F_FFFF,
            0x0340_0000,
        ] {
            assert_parity(&trie, &lpm, Ipv4Addr::from(bits));
        }
    }

    #[test]
    fn lookup_batch_matches_scalar_lookups() {
        let (_, lpm) = frozen(&[("0.0.0.0/0", 0), ("3.0.0.0/11", 1), ("3.33.0.9/32", 2)]);
        let addrs: Vec<u32> = vec![0x0300_0101, 0x0321_0009, 0xC000_0001, 0x0321_0008];
        let mut got = Vec::new();
        lpm.lookup_batch(&addrs, |i, r| got.push((i, r.map(|(_, v)| *v))));
        let want: Vec<(usize, Option<u32>)> = addrs
            .iter()
            .enumerate()
            .map(|(i, &b)| (i, lpm.lookup_bits(b).map(|(_, v)| *v)))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn compile_reflects_later_trie_state_only_on_recompile() {
        let mut trie = PrefixTrie::new();
        trie.insert(p("7.0.0.0/8"), 1u32);
        let lpm = FrozenLpm::compile(&trie);
        trie.insert(p("7.7.7.7/32"), 2);
        assert_eq!(lpm.lookup(a("7.7.7.7")).unwrap().1, &1, "frozen view");
        let lpm2 = FrozenLpm::compile(&trie);
        assert_eq!(lpm2.lookup(a("7.7.7.7")).unwrap().1, &2);
    }

    #[test]
    fn accounting_is_plausible() {
        let (_, lpm) = frozen(&[("3.0.0.0/11", 1), ("3.33.0.0/24", 2), ("3.33.0.9/32", 3)]);
        assert_eq!(lpm.len(), 3);
        assert_eq!(lpm.iter().count(), 3);
        // Root table dominates small structures: 64 Ki slots × 4 bytes.
        assert!(lpm.approx_bytes() >= ROOT_SLOTS * 4);
        assert!(lpm.approx_bytes() < ROOT_SLOTS * 4 + 4096);
    }

    #[test]
    fn dense_sibling_runs_compress() {
        // 256 adjacent /24s under one /16 collapse into one depth-16 node
        // with 256 runs — and no depth-24 nodes at all.
        let mut trie = PrefixTrie::new();
        for i in 0..256u32 {
            trie.insert(Prefix::new(Ipv4Addr::from(0x0A0A_0000 + (i << 8)), 24), i);
        }
        let lpm = FrozenLpm::compile(&trie);
        assert_eq!(lpm.node_count(), 1);
        for i in 0..256u32 {
            let addr = Ipv4Addr::from(0x0A0A_0000 + (i << 8) + 77);
            assert_eq!(lpm.lookup(addr).map(|(_, v)| *v), Some(i));
        }
    }
}
