//! Property tests pinning the sketches' advertised guarantees against
//! exact oracles, and the window ring's wraparound determinism.
//!
//! These are the contracts DESIGN.md §18 quotes; if a refactor of
//! `sketch.rs` weakens a bound, these fail before any dashboard does.

use std::collections::HashMap;

use infilter_telemetry::{CountMin, Hll, SpaceSaving, TopEntry, WindowRing};
use proptest::prelude::*;

/// A skewed stream: a handful of hot keys plus a long tail, the shape a
/// spoofed-source top-K actually sees.
fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        // 3-in-4 draws land on one of 8 hot keys, the rest on a long tail.
        (0u64..40_000).prop_map(|raw| {
            if raw < 30_000 {
                raw % 8
            } else {
                8 + raw % 10_000
            }
        }),
        1..600,
    )
}

fn exact_counts(keys: &[u64]) -> HashMap<u64, u64> {
    let mut exact = HashMap::new();
    for &k in keys {
        *exact.entry(k).or_insert(0u64) += 1;
    }
    exact
}

proptest! {
    /// Count-Min one-sided bound: `true ≤ estimate` always, and
    /// `estimate ≤ true + εN` with `ε = e/width` — checked per row-count
    /// probability by requiring EVERY key to respect the deterministic
    /// worst case `true + N` and the vast majority to sit within `εN`.
    /// (With depth 4 the per-key failure odds are `e⁻⁴ ≈ 1.8%`; a full
    /// stream failing the εN bound on every key is impossible.)
    #[test]
    fn count_min_overestimate_bound(keys in stream()) {
        let mut cm = CountMin::new(128, 4);
        for &k in &keys {
            cm.record(k, 1);
        }
        let exact = exact_counts(&keys);
        let n = cm.total();
        prop_assert_eq!(n, keys.len() as u64);
        let epsilon_n = ((std::f64::consts::E / cm.width() as f64) * n as f64).ceil() as u64;
        let mut within = 0usize;
        for (&k, &truth) in &exact {
            let est = cm.estimate(k);
            prop_assert!(est >= truth, "key {} underestimated: {} < {}", k, est, truth);
            if est <= truth + epsilon_n {
                within += 1;
            }
        }
        // δ = e⁻⁴ per key; demand ≥ 90% of keys inside the εN bound,
        // far looser than the expected ~98% but immune to unlucky draws.
        prop_assert!(
            within * 10 >= exact.len() * 9,
            "only {}/{} keys within the epsilon-N bound",
            within,
            exact.len()
        );
    }

    /// SpaceSaving guarantees (deterministic, not probabilistic):
    /// counts never underestimate, `count − err` never overestimates,
    /// per-entry error is ≤ N/capacity, and every key whose true count
    /// exceeds N/capacity is monitored.
    #[test]
    fn space_saving_topk_guarantee(keys in stream()) {
        const CAP: usize = 12;
        let mut ss = SpaceSaving::new(CAP);
        for &k in &keys {
            ss.record(k, 1);
        }
        let exact = exact_counts(&keys);
        let n = ss.total();
        prop_assert_eq!(n, keys.len() as u64);
        let bound = n / CAP as u64;
        let top = ss.top(CAP);
        for e in &top {
            let truth = exact.get(&e.key).copied().unwrap_or(0);
            prop_assert!(e.count >= truth, "count underestimates");
            prop_assert!(e.count - e.err <= truth, "guaranteed floor overestimates");
            prop_assert!(e.err <= bound, "err {} > N/m {}", e.err, bound);
        }
        for (&k, &truth) in &exact {
            if truth > bound {
                prop_assert!(
                    top.iter().any(|e| e.key == k),
                    "heavy hitter {} (count {}) not monitored",
                    k,
                    truth
                );
            }
        }
    }

    /// `top_into` into a caller slice returns exactly what the
    /// allocating `top` does, for every k.
    #[test]
    fn space_saving_top_into_parity(keys in stream(), k in 1usize..16) {
        let mut ss = SpaceSaving::new(12);
        for &key in &keys {
            ss.record(key, 1);
        }
        let mut buf = vec![TopEntry { key: 0, count: 0, err: 0 }; k];
        let n = ss.top_into(&mut buf);
        let allocating = ss.top(k);
        prop_assert_eq!(&buf[..n], allocating.as_slice());
    }

    /// HLL never loses distinct keys on merge: union estimate equals the
    /// estimate of the concatenated stream, and duplicates never inflate.
    #[test]
    fn hll_merge_matches_concatenation(a in stream(), b in stream()) {
        let mut ha = Hll::new(8);
        let mut hb = Hll::new(8);
        let mut whole = Hll::new(8);
        for &k in &a {
            ha.record(k);
            whole.record(k);
        }
        for &k in &b {
            hb.record(k);
            whole.record(k);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.estimate(), whole.estimate());
    }

    /// Window-ring wraparound determinism: after any push sequence the
    /// ring holds exactly the newest `min(pushes, capacity)` values in
    /// reverse push order — same result as a naive unbounded log.
    #[test]
    fn window_ring_wraparound_matches_log(
        values in prop::collection::vec(any::<u32>(), 1..100),
        capacity in 1usize..12,
    ) {
        let mut ring: WindowRing<u32> = WindowRing::new(capacity);
        let mut log: Vec<(u64, u32)> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            ring.push(i as u64, v);
            log.push((i as u64, v));
        }
        prop_assert_eq!(ring.len(), values.len().min(capacity));
        prop_assert_eq!(ring.pushed(), values.len() as u64);
        let expect: Vec<(u64, u32)> = log.iter().rev().take(capacity).copied().collect();
        prop_assert_eq!(ring.last(capacity), expect);
        let mut visited = Vec::new();
        ring.for_each_last(capacity, |seq, v| visited.push((seq, *v)));
        prop_assert_eq!(visited, ring.last(capacity));
    }
}
