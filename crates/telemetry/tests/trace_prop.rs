//! Property test: whatever interleaving of tracing operations a pipeline
//! performs — starts, ends (balanced or not), direct records, buffer and
//! depth overflow — the emitted span trees are well-formed: every parent
//! ID names a span that exists in the *same* trace, every span's `end_ns`
//! is at or after its `start_ns`, span IDs are unique, and spans never
//! leak across consecutive traces on the same thread.

use infilter_telemetry::trace;
use infilter_telemetry::{CompletedTrace, Ring};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Start,
    End,
    Record,
}

fn op() -> impl Strategy<Value = Op> {
    (0u8..3).prop_map(|x| match x {
        0 => Op::Start,
        1 => Op::End,
        _ => Op::Record,
    })
}

const NAMES: [&str; 4] = ["eia", "scan", "nns", "verdict"];

fn run_trace(id: u64, ops: &[Op], ring: &Ring<CompletedTrace>) -> CompletedTrace {
    trace::begin(id);
    for (i, op) in ops.iter().enumerate() {
        let name = NAMES[i % NAMES.len()];
        match op {
            Op::Start => trace::start(name),
            Op::End => trace::end(),
            Op::Record => {
                let t = trace::now_ns();
                trace::record(name, t.saturating_sub(50), t);
            }
        }
    }
    trace::finish(ring);
    ring.last(1).pop().expect("finish pushed the trace")
}

fn assert_well_formed(t: &CompletedTrace) {
    let spans = t.spans();
    assert!(spans.len() <= infilter_telemetry::MAX_SPANS);
    for (i, s) in spans.iter().enumerate() {
        assert_eq!(s.id as usize, i + 1, "span IDs are dense and 1-based");
        assert!(
            s.end_ns >= s.start_ns,
            "span {} ends before it starts",
            s.id
        );
        if s.parent != 0 {
            assert!(
                spans.iter().any(|p| p.id == s.parent),
                "span {} has parent {} which does not exist in trace {}",
                s.id,
                s.parent,
                t.id
            );
            assert!(s.parent < s.id, "parents are always opened before children");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn span_trees_are_well_formed(
        ops_a in proptest::collection::vec(op(), 0..96),
        ops_b in proptest::collection::vec(op(), 0..96),
    ) {
        let ring = Ring::new(4);
        // Two consecutive traces on the same thread, reusing the same
        // thread-local buffer: both must be independently well-formed and
        // share nothing.
        let ta = run_trace(1, &ops_a, &ring);
        let tb = run_trace(2, &ops_b, &ring);
        prop_assert_eq!(ta.id, 1);
        prop_assert_eq!(tb.id, 2);
        assert_well_formed(&ta);
        assert_well_formed(&tb);
        // No cross-trace leakage: trace B's span count is determined by
        // its own ops alone (every Start/Record attempt past MAX_SPANS is
        // truncated, never spliced from trace A's buffer).
        let attempts = ops_b
            .iter()
            .filter(|o| matches!(o, Op::Start | Op::Record))
            .count();
        prop_assert!(tb.len <= attempts);
        prop_assert_eq!(
            tb.truncated,
            attempts > infilter_telemetry::MAX_SPANS
                || exceeds_depth(&ops_b),
            "truncation flag must reflect overflow exactly"
        );
        // The collector saw exactly the two finishes.
        prop_assert_eq!(ring.pushed(), 2);
    }
}

/// Whether an op sequence ever holds more than `MAX_DEPTH` spans open.
fn exceeds_depth(ops: &[Op]) -> bool {
    let mut depth = 0usize;
    let mut len = 0usize;
    for op in ops {
        match op {
            Op::Start => {
                if depth >= 8 {
                    return true;
                }
                if len >= infilter_telemetry::MAX_SPANS {
                    return true;
                }
                len += 1;
                depth += 1;
            }
            Op::End => depth = depth.saturating_sub(1),
            Op::Record => {
                if len >= infilter_telemetry::MAX_SPANS {
                    return true;
                }
                len += 1;
            }
        }
    }
    false
}
