//! Property test: histogram percentiles track exact order statistics within
//! the advertised `2^-SUB_BUCKET_BITS` relative error bound.

use infilter_telemetry::{Histogram, SUB_BUCKET_BITS};
use proptest::prelude::*;

/// Exact order statistic matching `Histogram::percentile`'s definition:
/// the smallest value `v` with `ceil(q * n)` samples `<= v`.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentiles_stay_within_bucket_error(
        mut values in proptest::collection::vec(0u64..=u64::MAX >> 1, 1..512),
        permilles in proptest::collection::vec(1u64..=1000, 1..8),
    ) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        for q in permilles.into_iter().map(|p| p as f64 / 1000.0) {
            let exact = exact_percentile(&values, q);
            let approx = hist.percentile(q);
            // The histogram reports the top of the exact value's bucket:
            // never below the exact answer, never more than one bucket
            // width (value >> SUB_BUCKET_BITS) above it.
            prop_assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            prop_assert!(
                approx - exact <= exact >> SUB_BUCKET_BITS,
                "q={q}: approx {approx} too far above exact {exact}"
            );
        }
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.max(), *values.last().expect("non-empty"));
        prop_assert_eq!(hist.min(), values[0]);
    }
}
