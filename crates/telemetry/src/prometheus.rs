//! Prometheus text exposition format 0.0.4 renderer.
//!
//! Reference: the Prometheus "Exposition formats" spec — `# HELP` / `# TYPE`
//! headers per family, one `name{label="value"} value` sample per line,
//! histograms as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.

use crate::histogram::Histogram;
use std::fmt::Write as _;

/// Incremental builder for one exposition page.
///
/// Emit each metric family exactly once (headers are written per call), then
/// take the page with [`PromText::render`].
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

/// One labelled sample in a family: `(label pairs, value)`.
pub type Sample<'a> = (Vec<(&'a str, String)>, u64);

impl PromText {
    /// Creates an empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn head(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: impl std::fmt::Display) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (key, val)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{key}=\"{}\"", escape_label(val));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// An unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.head(name, help, "counter");
        self.sample(name, &[], value);
    }

    /// A counter family with one sample per label set.
    pub fn counter_family(&mut self, name: &str, help: &str, samples: &[Sample<'_>]) {
        self.head(name, help, "counter");
        for (labels, value) in samples {
            self.sample(name, labels, value);
        }
    }

    /// An unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.head(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// A gauge family with one sample per label set.
    pub fn gauge_family(&mut self, name: &str, help: &str, samples: &[Sample<'_>]) {
        self.head(name, help, "gauge");
        for (labels, value) in samples {
            self.sample(name, labels, value);
        }
    }

    /// A histogram family: cumulative `_bucket{le=...}` counts for each of
    /// `bounds` (plus `+Inf`), then `_sum` and `_count`. Bounds are snapped
    /// to the histogram's log-linear bucket grid (<=3.1% wide), so each
    /// `le` count may over-count by at most one native bucket.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &Histogram, bounds: &[u64]) {
        self.head(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        for &bound in bounds {
            self.sample(
                &bucket,
                &[("le", bound.to_string())],
                hist.count_le(bound).min(hist.count()),
            );
        }
        self.sample(&bucket, &[("le", "+Inf".to_string())], hist.count());
        self.sample(&format!("{name}_sum"), &[], hist.sum());
        self.sample(&format!("{name}_count"), &[], hist.count());
    }

    /// A full-line comment. Prometheus parsers skip any `#` line that is
    /// not `HELP`/`TYPE`, so this is the spec-safe place to attach
    /// out-of-band annotations — e.g. exemplar trace IDs for a histogram.
    /// `text` must not contain newlines (they would corrupt the page).
    pub fn comment(&mut self, text: &str) {
        debug_assert!(!text.contains('\n'), "comment must be one line");
        let _ = writeln!(self.out, "# {}", text.replace('\n', " "));
    }

    /// Finishes the page.
    pub fn render(self) -> String {
        self.out
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden rendering: the full page, byte for byte.
    #[test]
    fn golden_exposition_page() {
        let mut hist = Histogram::new();
        for v in [3u64, 40, 41, 900] {
            hist.record(v);
        }
        let mut page = PromText::new();
        page.counter("demo_flows_total", "Flows processed.", 12);
        page.counter_family(
            "demo_peer_suspects_total",
            "Suspects per peer.",
            &[
                (vec![("peer", "1".to_string())], 3),
                (vec![("peer", "2".to_string())], 9),
            ],
        );
        page.gauge("demo_occupancy", "Buffered flows.", 2.5);
        page.histogram("demo_latency_ns", "Latency.", &hist, &[10, 100, 1_000]);
        let expected = "\
# HELP demo_flows_total Flows processed.
# TYPE demo_flows_total counter
demo_flows_total 12
# HELP demo_peer_suspects_total Suspects per peer.
# TYPE demo_peer_suspects_total counter
demo_peer_suspects_total{peer=\"1\"} 3
demo_peer_suspects_total{peer=\"2\"} 9
# HELP demo_occupancy Buffered flows.
# TYPE demo_occupancy gauge
demo_occupancy 2.5
# HELP demo_latency_ns Latency.
# TYPE demo_latency_ns histogram
demo_latency_ns_bucket{le=\"10\"} 1
demo_latency_ns_bucket{le=\"100\"} 3
demo_latency_ns_bucket{le=\"1000\"} 4
demo_latency_ns_bucket{le=\"+Inf\"} 4
demo_latency_ns_sum 984
demo_latency_ns_count 4
";
        assert_eq!(page.render(), expected);
    }

    #[test]
    fn labels_are_escaped() {
        let mut page = PromText::new();
        page.counter_family(
            "demo_total",
            "Help with\nnewline and \\ slash.",
            &[(vec![("name", "quo\"te\\path\nline".to_string())], 1)],
        );
        let out = page.render();
        assert!(out.contains("# HELP demo_total Help with\\nnewline and \\\\ slash."));
        assert!(out.contains("name=\"quo\\\"te\\\\path\\nline\""));
    }
}
