//! A bounded, sequence-numbered structured event journal.
//!
//! Counters say *how many*; the journal says *what happened, in order*:
//! ladder transitions, EIA reloads, ring drops, adoptions, alerts — each
//! stamped with a globally ordered sequence number and a monotonic
//! timestamp, held in a bounded [`Ring`].
//!
//! The sequence number is allocated by one atomic increment **before** the
//! ring write, so it is gapless over everything that ever happened even
//! when the bounded ring has overwritten or dropped entries: a reader who
//! sees sequence numbers `[17, 18, 21]` knows events 19–20 existed and are
//! gone. That property is what makes the journal auditable rather than
//! merely decorative, and it is exactly what the sequence-gap test pins.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ring::Ring;
use crate::trace::now_ns;

/// One journalled event: the domain payload plus its global order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqEvent<T> {
    /// Global sequence number, 1-based, gapless across the journal's life.
    pub seq: u64,
    /// Nanoseconds since the process trace epoch ([`now_ns`]).
    pub at_ns: u64,
    /// The domain event.
    pub event: T,
}

/// A lock-free bounded journal of `T` events.
///
/// Writers never block: the backing [`Ring`] overwrites the oldest entry
/// when full and skips (counting a drop) under slot contention. `T` should
/// be `Copy` so recording never allocates.
#[derive(Debug)]
pub struct Journal<T: Clone> {
    seq: AtomicU64,
    ring: Ring<SeqEvent<T>>,
}

impl<T: Clone> Journal<T> {
    /// A journal retaining up to `capacity` events (0 retains nothing but
    /// still hands out sequence numbers).
    pub fn new(capacity: usize) -> Journal<T> {
        Journal {
            seq: AtomicU64::new(0),
            ring: Ring::new(capacity),
        }
    }

    /// Records an event, returning its sequence number.
    pub fn record(&self, event: T) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.ring.push(SeqEvent {
            seq,
            at_ns: now_ns(),
            event,
        });
        seq
    }

    /// Events ever recorded (= the highest sequence number handed out).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events lost to slot contention or a zero-capacity ring (entries
    /// overwritten by newer ones are not counted here — sequence gaps
    /// reveal those).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// The newest `n` retained events, newest first.
    pub fn last(&self, n: usize) -> Vec<SeqEvent<T>> {
        self.ring.last(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_gapless_and_ordered() {
        let journal: Journal<u32> = Journal::new(16);
        for i in 0..10u32 {
            assert_eq!(journal.record(i), u64::from(i) + 1);
        }
        assert_eq!(journal.recorded(), 10);
        let mut last = journal.last(10);
        last.reverse(); // oldest first
        let seqs: Vec<u64> = last.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>());
        assert!(last.windows(2).all(|w| w[1].at_ns >= w[0].at_ns));
    }

    /// Concurrent writers: with capacity for every event, the union of
    /// retained sequence numbers must be exactly `1..=N` — no duplicates,
    /// no gaps — because the sequence allocation is a single atomic and
    /// unique tickets land in unique slots.
    #[test]
    fn no_sequence_gaps_under_concurrent_writers() {
        const THREADS: usize = 8;
        const EACH: u64 = 200;
        let journal: Journal<usize> = Journal::new((THREADS as u64 * EACH) as usize);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let journal = &journal;
                scope.spawn(move || {
                    for _ in 0..EACH {
                        journal.record(t);
                    }
                });
            }
        });
        let total = THREADS as u64 * EACH;
        assert_eq!(journal.recorded(), total);
        assert_eq!(journal.dropped(), 0);
        let mut seqs: Vec<u64> = journal.last(total as usize).iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=total).collect::<Vec<u64>>());
    }

    /// A small ring under concurrent writers still allocates globally
    /// unique, strictly increasing sequence numbers; what it retains is a
    /// suffix-biased sample whose gaps are exactly the overwritten or
    /// dropped events.
    #[test]
    fn bounded_ring_keeps_sequence_order() {
        const THREADS: usize = 4;
        const EACH: u64 = 500;
        let journal: Journal<usize> = Journal::new(32);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let journal = &journal;
                scope.spawn(move || {
                    for _ in 0..EACH {
                        journal.record(t);
                    }
                });
            }
        });
        let total = THREADS as u64 * EACH;
        assert_eq!(journal.recorded(), total);
        let mut seqs: Vec<u64> = journal.last(32).iter().map(|e| e.seq).collect();
        let retained = seqs.len();
        assert!(retained <= 32);
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), retained, "sequence numbers must be unique");
        assert!(*seqs.last().expect("nonempty") <= total);
    }

    #[test]
    fn zero_capacity_counts_everything_retains_nothing() {
        let journal: Journal<u8> = Journal::new(0);
        for _ in 0..5 {
            journal.record(1);
        }
        assert_eq!(journal.recorded(), 5);
        assert!(journal.last(10).is_empty());
    }
}
