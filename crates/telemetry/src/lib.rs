//! Observability primitives for the InFilter pipeline.
//!
//! This crate is deliberately **generic and dependency-free**: it knows
//! nothing about flows, peers, or verdicts. `infilter-core` depends on it
//! and supplies the domain types (the flight-recorder payload, the metric
//! names, the bucket bounds). The pieces:
//!
//! * [`Histogram`] / [`AtomicHistogram`] — log-linear HDR-style value
//!   histograms with bounded relative error and p50/p90/p99/p999 readout.
//!   The atomic variant is lock-free (relaxed per-bucket counters) so the
//!   sharded analyzer can record from many threads without coordination.
//! * [`Ring`] — a fixed-capacity, non-blocking flight-recorder ring buffer.
//!   Writers never wait: a slot that is momentarily held by another writer
//!   is skipped and counted in [`Ring::dropped`].
//! * [`Family`] — a keyed family of default-constructed counter cells
//!   (e.g. per-peer counters), read-lock fast path on the hot side.
//! * [`PromText`] — a Prometheus text-format (0.0.4) exposition renderer.
//! * [`DeltaReporter`] — turns successive counter snapshots into
//!   per-interval deltas and rates for periodic reporting.
//! * [`trace`] — a sampled span tracer: head-based 1-in-N decisions
//!   ([`Tracer`]), pre-allocated thread-local span buffers, a lock-free
//!   collector ring of [`CompletedTrace`]s, Chrome trace-event export,
//!   and histogram [`Exemplar`] linkage.
//! * [`Journal`] — a bounded, sequence-numbered structured event journal
//!   whose gapless sequence numbers make retention losses auditable.
//! * [`CountMin`] / [`SpaceSaving`] / [`Hll`] — fixed-memory, mergeable
//!   streaming sketches with proven error bounds, for attack-shape
//!   summaries (point frequency, top-K heavy hitters, distinct counts).
//! * [`WindowRing`] — a pre-allocated ring of per-interval aggregate
//!   snapshots answering "last N intervals" queries in bounded memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod family;
mod histogram;
mod journal;
mod prometheus;
mod report;
mod ring;
mod sketch;
pub mod trace;
mod window;

pub use family::Family;
pub use histogram::{AtomicHistogram, Histogram, LatencySummary, BUCKETS, SUB_BUCKET_BITS};
pub use journal::{Journal, SeqEvent};
pub use prometheus::PromText;
pub use report::{DeltaReporter, RateSample};
pub use ring::Ring;
pub use sketch::{CountMin, Hll, SpaceSaving, TopEntry};
pub use trace::{chrome_trace_json, CompletedTrace, Exemplar, Span, Tracer, MAX_SPANS};
pub use window::WindowRing;
