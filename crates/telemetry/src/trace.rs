//! Sampled span tracing for the ingest path.
//!
//! The tracer answers "where did this datagram's time go" without a
//! debugger: a head-based 1-in-N sampling decision is taken once per
//! datagram at ingress ([`Tracer::decide`]), and a sampled flow then
//! carries a trace ID through the pipeline. Each pipeline stage opens and
//! closes [`Span`]s against a **pre-allocated thread-local buffer** — no
//! heap allocation, no locks on the hot path — and the completed trace is
//! drained into a lock-free collector [`Ring`] when the flow's verdict is
//! out ([`finish`]).
//!
//! Design constraints, in order:
//!
//! 1. **Tracing off must cost nothing measurable.** Every stage hook is a
//!    single thread-local `Cell` read when no trace is active.
//! 2. **Tracing on must not allocate.** Spans are `Copy`, the active
//!    buffer is a fixed array, and [`CompletedTrace`] is a fixed array, so
//!    pushing one into the collector ring moves ~1 KiB but never touches
//!    the allocator.
//! 3. **Interesting flows are always caught.** [`Tracer::force_next`] arms
//!    the *next* sampling decision, so shed, alert, and ladder-transition
//!    events promote the following datagram to sampled even when the 1-in-N
//!    counter would skip it (head sampling cannot retroactively trace the
//!    triggering datagram itself).
//!
//! Timestamps are nanoseconds since a process-wide epoch ([`now_ns`]), so
//! spans recorded on different threads (listener vs. worker) share one
//! monotonic timeline. [`chrome_trace_json`] exports completed traces as
//! Chrome trace-event JSON loadable in `chrome://tracing` or Perfetto.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::ring::Ring;

/// Spans one trace can hold; stages past the cap are dropped and the
/// trace is marked truncated.
pub const MAX_SPANS: usize = 24;

/// Maximum nesting depth of simultaneously open spans.
pub const MAX_DEPTH: usize = 8;

/// Sentinel span ID for a start that could not get a slot (buffer full):
/// its matching `end` must still pop the stack but writes nowhere.
const DROPPED: u16 = u16::MAX;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch (the first call from any
/// thread pins the epoch). Monotonic and shared across threads, so spans
/// stamped by the listener nest correctly against spans stamped by the
/// worker.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One timed stage of a sampled flow's journey.
///
/// `name` is `&'static str` so recording never allocates; names must be
/// JSON-safe (no quotes or backslashes) because the exporter writes them
/// verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage name, e.g. `"decode"` or `"queue_wait"`.
    pub name: &'static str,
    /// Span ID, unique within its trace, 1-based.
    pub id: u16,
    /// Parent span ID within the same trace; 0 = top-level.
    pub parent: u16,
    /// Start, nanoseconds since [`now_ns`]'s epoch.
    pub start_ns: u64,
    /// End, nanoseconds since [`now_ns`]'s epoch; always `>= start_ns`.
    pub end_ns: u64,
}

const EMPTY_SPAN: Span = Span {
    name: "",
    id: 0,
    parent: 0,
    start_ns: 0,
    end_ns: 0,
};

/// A finished trace: a fixed-size, `Copy` span table so pushing into the
/// collector [`Ring`] never allocates.
#[derive(Debug, Clone, Copy)]
pub struct CompletedTrace {
    /// The trace ID handed out by [`Tracer::decide`] (never 0).
    pub id: u64,
    /// Spans actually recorded (`spans[..len]` are valid).
    pub len: usize,
    /// True if more than [`MAX_SPANS`] stages were recorded and the
    /// overflow was dropped.
    pub truncated: bool,
    /// The span table; only `spans[..len]` is meaningful.
    pub spans: [Span; MAX_SPANS],
}

impl CompletedTrace {
    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.len.min(MAX_SPANS)]
    }
}

/// The per-thread active-trace buffer. Fixed arrays, `Copy` contents —
/// zero allocation for the life of the thread.
struct Buf {
    len: usize,
    depth: usize,
    /// Opens past [`MAX_DEPTH`]: counted so the matching `end` calls
    /// balance without touching the stack.
    over: usize,
    truncated: bool,
    open: [u16; MAX_DEPTH],
    spans: [Span; MAX_SPANS],
}

impl Buf {
    /// The innermost open span that actually got a slot — a span opened
    /// while the buffer was full leaves a [`DROPPED`] marker on the stack,
    /// and children must not point at a span that does not exist.
    fn parent(&self) -> u16 {
        self.open[..self.depth]
            .iter()
            .rev()
            .copied()
            .find(|&id| id != DROPPED)
            .unwrap_or(0)
    }
}

thread_local! {
    /// The active trace ID (0 = no trace): the one-read fast path every
    /// stage hook takes when tracing is off or this flow is unsampled.
    static ACTIVE_ID: Cell<u64> = const { Cell::new(0) };
    static BUF: RefCell<Buf> = const {
        RefCell::new(Buf {
            len: 0,
            depth: 0,
            over: 0,
            truncated: false,
            open: [0; MAX_DEPTH],
            spans: [EMPTY_SPAN; MAX_SPANS],
        })
    };
}

/// The trace ID active on this thread, or 0.
#[inline]
pub fn active() -> u64 {
    ACTIVE_ID.with(|c| c.get())
}

/// Activates a trace on this thread, resetting the span buffer. `id` 0 is
/// a no-op, so callers can pass [`Tracer::decide`]'s result straight in.
pub fn begin(id: u64) {
    if id == 0 {
        return;
    }
    ACTIVE_ID.with(|c| c.set(id));
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.len = 0;
        b.depth = 0;
        b.over = 0;
        b.truncated = false;
    });
}

/// Opens a span. No-op (one thread-local read) when no trace is active.
/// Must be balanced by [`end`].
#[inline]
pub fn start(name: &'static str) {
    if active() == 0 {
        return;
    }
    start_slow(name);
}

#[cold]
fn start_slow(name: &'static str) {
    let t = now_ns();
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if b.depth >= MAX_DEPTH {
            b.over += 1;
            b.truncated = true;
            return;
        }
        let len = b.len;
        let id = if len < MAX_SPANS {
            let id = (len + 1) as u16;
            let parent = b.parent();
            b.spans[len] = Span {
                name,
                id,
                parent,
                start_ns: t,
                end_ns: t,
            };
            b.len = len + 1;
            id
        } else {
            b.truncated = true;
            DROPPED
        };
        let depth = b.depth;
        b.open[depth] = id;
        b.depth = depth + 1;
    });
}

/// Closes the innermost open span. No-op when no trace is active or
/// nothing is open.
#[inline]
pub fn end() {
    if active() == 0 {
        return;
    }
    end_slow();
}

#[cold]
fn end_slow() {
    let t = now_ns();
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if b.over > 0 {
            b.over -= 1;
            return;
        }
        if b.depth == 0 {
            return;
        }
        b.depth -= 1;
        let id = b.open[b.depth];
        if id != 0 && id != DROPPED {
            b.spans[(id - 1) as usize].end_ns = t;
        }
    });
}

/// Records an already-closed span from explicit timestamps — how the pump
/// retrofits the listener-side stages (recv, decode, queue wait) it learns
/// from the batch's carried stamps. Parented under the innermost open
/// span, if any.
pub fn record(name: &'static str, start_ns: u64, end_ns: u64) {
    if active() == 0 {
        return;
    }
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if b.len >= MAX_SPANS {
            b.truncated = true;
            return;
        }
        let len = b.len;
        let id = (len + 1) as u16;
        let parent = b.parent();
        b.spans[len] = Span {
            name,
            id,
            parent,
            start_ns,
            end_ns: end_ns.max(start_ns),
        };
        b.len = len + 1;
    });
}

/// Finishes the active trace: closes any still-open spans at "now", pushes
/// the completed trace into `collector`, and deactivates tracing on this
/// thread. No-op when no trace is active.
pub fn finish(collector: &Ring<CompletedTrace>) {
    let id = active();
    if id == 0 {
        return;
    }
    let t = now_ns();
    let trace = BUF.with(|b| {
        let mut b = b.borrow_mut();
        while b.depth > 0 {
            b.depth -= 1;
            let sid = b.open[b.depth];
            if sid != 0 && sid != DROPPED {
                b.spans[(sid - 1) as usize].end_ns = t;
            }
        }
        b.over = 0;
        CompletedTrace {
            id,
            len: b.len,
            truncated: b.truncated,
            spans: b.spans,
        }
    });
    ACTIVE_ID.with(|c| c.set(0));
    collector.push(trace);
}

/// Deactivates the active trace without collecting it (shed paths).
pub fn abandon() {
    ACTIVE_ID.with(|c| c.set(0));
}

/// The sampling gate and collector: decides once per datagram whether the
/// flow is traced, hands out trace IDs, and owns the ring completed traces
/// drain into.
#[derive(Debug)]
pub struct Tracer {
    /// 1-in-N sampling cadence; 0 disables tracing entirely (including
    /// forced samples), which is the zero-overhead production default gate.
    sample_every: u64,
    counter: AtomicU64,
    force: AtomicBool,
    next_id: AtomicU64,
    sampled: AtomicU64,
    forced: AtomicU64,
    collector: Ring<CompletedTrace>,
}

impl Tracer {
    /// A tracer sampling 1 in `sample_every` datagrams into a collector of
    /// `capacity` completed traces. `sample_every` 0 disables tracing.
    pub fn new(sample_every: u64, capacity: usize) -> Tracer {
        Tracer {
            sample_every,
            counter: AtomicU64::new(0),
            force: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            forced: AtomicU64::new(0),
            collector: Ring::new(capacity),
        }
    }

    /// A tracer that never samples and collects nothing.
    pub fn disabled() -> Tracer {
        Tracer::new(0, 0)
    }

    /// Whether sampling is enabled at all.
    pub fn enabled(&self) -> bool {
        self.sample_every != 0
    }

    /// The configured 1-in-N cadence (0 = disabled).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// The head sampling decision, taken once per datagram at ingress:
    /// returns a fresh nonzero trace ID for a sampled datagram, 0 for an
    /// unsampled one. A pending [`force_next`](Tracer::force_next) always
    /// samples (and clears the arm).
    pub fn decide(&self) -> u64 {
        if self.sample_every == 0 {
            return 0;
        }
        let forced =
            self.force.load(Ordering::Relaxed) && self.force.swap(false, Ordering::Relaxed);
        let due = self
            .counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every);
        if forced || due {
            self.sampled.fetch_add(1, Ordering::Relaxed);
            if forced {
                self.forced.fetch_add(1, Ordering::Relaxed);
            }
            self.next_id.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            0
        }
    }

    /// Arms the next [`decide`](Tracer::decide) to sample regardless of the
    /// 1-in-N counter. Called on shed, alert, and ladder-transition events
    /// so the traffic that *follows* an incident is always traced (head
    /// sampling cannot go back and trace the triggering datagram).
    pub fn force_next(&self) {
        if self.sample_every != 0 {
            self.force.store(true, Ordering::Relaxed);
        }
    }

    /// The ring completed traces drain into; hand this to [`finish`].
    pub fn collector(&self) -> &Ring<CompletedTrace> {
        &self.collector
    }

    /// Datagrams promoted to sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Sampled datagrams that were force-promoted by an incident.
    pub fn forced(&self) -> u64 {
        self.forced.load(Ordering::Relaxed)
    }

    /// The newest `n` completed traces, newest first.
    pub fn last(&self, n: usize) -> Vec<CompletedTrace> {
        self.collector.last(n)
    }
}

/// Links a latency histogram to a concrete trace: a lock-free
/// max-tracking `(value, trace_id)` pair, so the exposition page can point
/// the p999 tail at a trace the operator can actually open.
///
/// `offer` races value and trace stores deliberately: a torn pair can at
/// worst attribute the maximum to a near-maximal trace, which is fine for
/// an exemplar (observability, not accounting).
#[derive(Debug, Default)]
pub struct Exemplar {
    value: AtomicU64,
    trace: AtomicU64,
}

impl Exemplar {
    /// An empty exemplar.
    pub fn new() -> Exemplar {
        Exemplar::default()
    }

    /// Offers an observation; kept only if it beats the current maximum.
    /// `trace_id` 0 (no active trace) is ignored.
    pub fn offer(&self, value: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        let mut cur = self.value.load(Ordering::Relaxed);
        while value > cur {
            match self
                .value
                .compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.trace.store(trace_id, Ordering::Relaxed);
                    break;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current `(value, trace_id)` maximum, if any trace ever offered.
    pub fn get(&self) -> Option<(u64, u64)> {
        let trace = self.trace.load(Ordering::Relaxed);
        if trace == 0 {
            None
        } else {
            Some((self.value.load(Ordering::Relaxed), trace))
        }
    }
}

/// Renders completed traces as Chrome trace-event JSON — an object with a
/// `traceEvents` array of `"ph":"X"` complete events — loadable directly
/// in `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
/// microseconds (fractional, nanosecond precision) on the shared process
/// timeline; each trace renders as its own `tid` lane under `pid` 1.
pub fn chrome_trace_json(traces: &[CompletedTrace]) -> String {
    let mut out = String::with_capacity(128 + 160 * traces.len() * 8);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for t in traces {
        for s in t.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            let dur = s.end_ns.saturating_sub(s.start_ns);
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"infilter\",\"ph\":\"X\",\
                 \"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"trace_id\":{},\"span\":{},\"parent\":{}}}}}",
                s.name,
                s.start_ns / 1_000,
                s.start_ns % 1_000,
                dur / 1_000,
                dur % 1_000,
                t.id,
                t.id,
                s.id,
                s.parent
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_active() {
        // Tests share threads; make sure no trace leaks between them.
        abandon();
    }

    #[test]
    fn unsampled_thread_records_nothing() {
        drain_active();
        let ring = Ring::new(8);
        start("eia");
        end();
        record("decode", 10, 20);
        finish(&ring);
        assert_eq!(ring.pushed(), 0);
    }

    #[test]
    fn spans_nest_and_collect() {
        drain_active();
        let ring = Ring::new(8);
        begin(7);
        record("recv", 100, 200);
        start("verdict");
        start("scan");
        end();
        start("nns");
        end();
        end();
        finish(&ring);
        let traces = ring.last(8);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.id, 7);
        assert!(!t.truncated);
        let names: Vec<&str> = t.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, ["recv", "verdict", "scan", "nns"]);
        let verdict = t.spans()[1];
        assert_eq!(t.spans()[0].parent, 0);
        assert_eq!(verdict.parent, 0);
        assert_eq!(t.spans()[2].parent, verdict.id);
        assert_eq!(t.spans()[3].parent, verdict.id);
        for s in t.spans() {
            assert!(s.end_ns >= s.start_ns);
        }
        // Finishing deactivates: a second finish pushes nothing.
        finish(&ring);
        assert_eq!(ring.pushed(), 1);
    }

    #[test]
    fn overflow_truncates_without_unbalancing() {
        drain_active();
        let ring = Ring::new(2);
        begin(1);
        for _ in 0..MAX_SPANS + 5 {
            start("s");
            end();
        }
        finish(&ring);
        let t = ring.last(1)[0];
        assert_eq!(t.len, MAX_SPANS);
        assert!(t.truncated);
    }

    #[test]
    fn depth_overflow_balances() {
        drain_active();
        let ring = Ring::new(2);
        begin(2);
        for _ in 0..MAX_DEPTH + 3 {
            start("deep");
        }
        for _ in 0..MAX_DEPTH + 3 {
            end();
        }
        start("after");
        end();
        finish(&ring);
        let t = ring.last(1)[0];
        assert!(t.truncated);
        let after = t.spans().iter().find(|s| s.name == "after").expect("kept");
        assert_eq!(after.parent, 0, "stack must rebalance after deep overflow");
    }

    #[test]
    fn finish_closes_open_spans() {
        drain_active();
        let ring = Ring::new(2);
        begin(3);
        start("left_open");
        finish(&ring);
        let t = ring.last(1)[0];
        assert_eq!(t.len, 1);
        assert!(t.spans()[0].end_ns >= t.spans()[0].start_ns);
    }

    #[test]
    fn tracer_samples_one_in_n_and_forces() {
        let tracer = Tracer::new(4, 8);
        let ids: Vec<u64> = (0..8).map(|_| tracer.decide()).collect();
        assert_eq!(ids.iter().filter(|&&id| id != 0).count(), 2);
        assert_ne!(ids[0], 0, "head sampling fires on the first datagram");
        tracer.force_next();
        assert_ne!(tracer.decide(), 0, "forced decision samples");
        assert_eq!(tracer.forced(), 1);
        let disabled = Tracer::disabled();
        disabled.force_next();
        assert_eq!(disabled.decide(), 0, "disabled tracer never samples");
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let tracer = Tracer::new(1, 8);
        let a = tracer.decide();
        let b = tracer.decide();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn exemplar_tracks_the_maximum() {
        let ex = Exemplar::new();
        assert_eq!(ex.get(), None);
        ex.offer(100, 0);
        assert_eq!(ex.get(), None, "no active trace, no exemplar");
        ex.offer(100, 5);
        ex.offer(50, 6);
        assert_eq!(ex.get(), Some((100, 5)));
        ex.offer(200, 7);
        assert_eq!(ex.get(), Some((200, 7)));
    }

    /// Golden output: the exporter's JSON, byte for byte, from hand-built
    /// spans with fixed timestamps.
    #[test]
    fn golden_chrome_trace_json() {
        let mut spans = [EMPTY_SPAN; MAX_SPANS];
        spans[0] = Span {
            name: "recv",
            id: 1,
            parent: 0,
            start_ns: 1_000,
            end_ns: 3_500,
        };
        spans[1] = Span {
            name: "queue_wait",
            id: 2,
            parent: 0,
            start_ns: 3_500,
            end_ns: 10_001,
        };
        spans[2] = Span {
            name: "nns",
            id: 3,
            parent: 2,
            start_ns: 4_000,
            end_ns: 4_250,
        };
        let trace = CompletedTrace {
            id: 42,
            len: 3,
            truncated: false,
            spans,
        };
        let expected = "{\"traceEvents\":[\n\
            {\"name\":\"recv\",\"cat\":\"infilter\",\"ph\":\"X\",\"ts\":1.000,\"dur\":2.500,\"pid\":1,\"tid\":42,\"args\":{\"trace_id\":42,\"span\":1,\"parent\":0}},\n\
            {\"name\":\"queue_wait\",\"cat\":\"infilter\",\"ph\":\"X\",\"ts\":3.500,\"dur\":6.501,\"pid\":1,\"tid\":42,\"args\":{\"trace_id\":42,\"span\":2,\"parent\":0}},\n\
            {\"name\":\"nns\",\"cat\":\"infilter\",\"ph\":\"X\",\"ts\":4.000,\"dur\":0.250,\"pid\":1,\"tid\":42,\"args\":{\"trace_id\":42,\"span\":3,\"parent\":2}}\n\
            ]}\n";
        assert_eq!(chrome_trace_json(&[trace]), expected);
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[\n]}\n");
    }
}
