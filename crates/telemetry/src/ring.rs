//! A fixed-capacity, non-blocking flight-recorder ring buffer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Multi-writer ring buffer holding the last ~`capacity` entries.
///
/// Writers claim a slot with one `fetch_add` on the cursor and then take the
/// slot's mutex with `try_lock`: if another writer (or a reader) holds it —
/// which can only happen when the ring has wrapped all the way around within
/// one write, or during a concurrent [`last`] scan — the entry is *dropped*
/// and counted, never blocking the pipeline. Readers lock slots one at a
/// time, so a snapshot is per-slot consistent but not a global cut; entries
/// carry their own sequence numbers if the caller needs a total order.
///
/// [`last`]: Ring::last
#[derive(Debug)]
pub struct Ring<T> {
    slots: Vec<Mutex<Option<T>>>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl<T: Clone> Ring<T> {
    /// Creates a ring with room for `capacity` entries. A zero capacity
    /// yields a ring that drops (and counts) everything pushed into it.
    pub fn new(capacity: usize) -> Ring<T> {
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total entries ever pushed (including dropped ones).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Entries discarded because their slot was contended (or capacity is 0).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records an entry, overwriting the oldest. Never blocks: on slot
    /// contention the entry is counted in [`Ring::dropped`] instead.
    pub fn push(&self, entry: T) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        if self.slots.is_empty() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => *guard = Some(entry),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                *poisoned.into_inner() = Some(entry);
            }
            Err(std::sync::TryLockError::WouldBlock) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Returns up to `n` of the most recent entries, newest first.
    pub fn last(&self, n: usize) -> Vec<T> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let reach = (self.slots.len() as u64).min(cursor).min(n as u64);
        let mut out = Vec::with_capacity(reach as usize);
        for back in 1..=reach {
            let slot = &self.slots[((cursor - back) % self.slots.len() as u64) as usize];
            let entry = match slot.lock() {
                Ok(guard) => guard.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            };
            if let Some(entry) = entry {
                out.push(entry);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_entries() {
        let ring = Ring::new(4);
        for i in 0..10u32 {
            ring.push(i);
        }
        assert_eq!(ring.last(4), vec![9, 8, 7, 6]);
        assert_eq!(ring.last(2), vec![9, 8]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let ring = Ring::new(0);
        ring.push(1u32);
        ring.push(2);
        assert!(ring.last(8).is_empty());
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn partial_fill_returns_only_written() {
        let ring = Ring::new(8);
        ring.push(41u32);
        ring.push(42);
        assert_eq!(ring.last(8), vec![42, 41]);
    }

    #[test]
    fn concurrent_pushes_never_block_and_account_exactly() {
        let ring = std::sync::Arc::new(Ring::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        ring.push(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("writer must not panic");
        }
        assert_eq!(ring.pushed(), 4_000);
        assert!(ring.last(64).len() <= 64);
        assert!(!ring.last(64).is_empty());
    }
}
