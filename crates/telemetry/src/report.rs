//! Periodic-snapshot delta/rate reporting over monotone counters.

use std::collections::BTreeMap;

/// One counter's movement over a reporting interval.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSample {
    /// Counter name as supplied in the snapshot.
    pub name: String,
    /// Current cumulative value.
    pub value: u64,
    /// Increase since the previous snapshot (0 on the first observation,
    /// and clamped to 0 if a counter ever moves backwards, e.g. on reset).
    pub delta: u64,
    /// `delta / elapsed_secs` (0.0 when `elapsed_secs` is not positive).
    pub per_sec: f64,
}

/// Turns successive `(name, value)` counter snapshots into per-interval
/// deltas and rates. The caller supplies elapsed wall time, keeping the
/// reporter deterministic and trivially testable.
#[derive(Debug, Default)]
pub struct DeltaReporter {
    previous: BTreeMap<String, u64>,
}

impl DeltaReporter {
    /// Creates a reporter with no history.
    pub fn new() -> DeltaReporter {
        DeltaReporter::default()
    }

    /// Absorbs a snapshot and returns one [`RateSample`] per counter,
    /// sorted by name.
    pub fn observe<'a>(
        &mut self,
        counters: impl IntoIterator<Item = (&'a str, u64)>,
        elapsed_secs: f64,
    ) -> Vec<RateSample> {
        let mut out = Vec::new();
        let mut next = BTreeMap::new();
        for (name, value) in counters {
            let delta = value.saturating_sub(self.previous.get(name).copied().unwrap_or(value));
            let per_sec = if elapsed_secs > 0.0 {
                delta as f64 / elapsed_secs
            } else {
                0.0
            };
            out.push(RateSample {
                name: name.to_string(),
                value,
                delta,
                per_sec,
            });
            next.insert(name.to_string(), value);
        }
        self.previous = next;
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_has_zero_delta() {
        let mut reporter = DeltaReporter::new();
        let samples = reporter.observe([("flows", 100u64)], 1.0);
        assert_eq!(samples[0].delta, 0);
        assert_eq!(samples[0].value, 100);
    }

    #[test]
    fn deltas_and_rates_track_growth() {
        let mut reporter = DeltaReporter::new();
        reporter.observe([("flows", 100u64), ("attacks", 2u64)], 1.0);
        let samples = reporter.observe([("flows", 350u64), ("attacks", 2u64)], 2.0);
        let flows = samples.iter().find(|s| s.name == "flows").expect("present");
        assert_eq!(flows.delta, 250);
        assert!((flows.per_sec - 125.0).abs() < 1e-9);
        let attacks = samples
            .iter()
            .find(|s| s.name == "attacks")
            .expect("present");
        assert_eq!(attacks.delta, 0);
    }

    #[test]
    fn backwards_counter_clamps_to_zero() {
        let mut reporter = DeltaReporter::new();
        reporter.observe([("flows", 100u64)], 1.0);
        let samples = reporter.observe([("flows", 40u64)], 1.0);
        assert_eq!(samples[0].delta, 0);
    }
}
