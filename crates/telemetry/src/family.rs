//! Keyed families of counter cells (per-peer, per-interface, …).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, RwLock};

/// A lazily-populated map from label key to a shared, default-constructed
/// cell of counters.
///
/// The common case — the key already exists — takes only a read lock plus
/// an `Arc` clone, so concurrent writers on *different* keys never contend
/// beyond the shared-reader lock. The write lock is taken once per new key.
/// Intended for low-rate paths (suspects, adoptions), not per-flow hot code.
#[derive(Debug, Default)]
pub struct Family<K, C> {
    cells: RwLock<HashMap<K, Arc<C>>>,
}

impl<K: Eq + Hash + Clone + Ord, C: Default> Family<K, C> {
    /// Creates an empty family.
    pub fn new() -> Family<K, C> {
        Family {
            cells: RwLock::new(HashMap::new()),
        }
    }

    /// Returns the cell for `key`, creating it on first use.
    pub fn get(&self, key: &K) -> Arc<C> {
        if let Some(cell) = self
            .cells
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(key)
        {
            return Arc::clone(cell);
        }
        let mut cells = self
            .cells
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(cells.entry(key.clone()).or_default())
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.cells
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// True when no key has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All cells, sorted by key for deterministic exposition output.
    pub fn snapshot(&self) -> Vec<(K, Arc<C>)> {
        let mut out: Vec<(K, Arc<C>)> = self
            .cells
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, c)| (k.clone(), Arc::clone(c)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug, Default)]
    struct Cell {
        hits: AtomicU64,
    }

    #[test]
    fn same_key_shares_a_cell() {
        let family: Family<u16, Cell> = Family::new();
        family.get(&7).hits.fetch_add(1, Ordering::Relaxed);
        family.get(&7).hits.fetch_add(1, Ordering::Relaxed);
        family.get(&9).hits.fetch_add(1, Ordering::Relaxed);
        assert_eq!(family.len(), 2);
        let snap = family.snapshot();
        assert_eq!(snap[0].0, 7);
        assert_eq!(snap[0].1.hits.load(Ordering::Relaxed), 2);
        assert_eq!(snap[1].0, 9);
        assert_eq!(snap[1].1.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_bumps_are_all_counted() {
        let family: std::sync::Arc<Family<u16, Cell>> = std::sync::Arc::new(Family::new());
        let threads: Vec<_> = (0..4u16)
            .map(|t| {
                let family = family.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        family.get(&(t % 2)).hits.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("bumper must not panic");
        }
        let total: u64 = family
            .snapshot()
            .iter()
            .map(|(_, c)| c.hits.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 4_000);
    }
}
