//! Keyed families of counter cells (per-peer, per-interface, …).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A lazily-populated map from label key to a shared, default-constructed
/// cell of counters.
///
/// The common case — the key already exists — takes only a read lock plus
/// an `Arc` clone, so concurrent writers on *different* keys never contend
/// beyond the shared-reader lock. The write lock is taken once per new key.
/// Intended for low-rate paths (suspects, adoptions), not per-flow hot code.
///
/// Cardinality can be bounded with [`Family::bounded`]: once `cap`
/// distinct keys exist, further new keys all share one overflow aggregate
/// cell instead of allocating a new one — a hostile keyspace (spoofed
/// sources are arbitrary addresses) then costs O(cap) memory, not O(keys).
#[derive(Debug)]
pub struct Family<K, C> {
    cells: RwLock<HashMap<K, Arc<C>>>,
    /// `usize::MAX` = unbounded (the default).
    cap: usize,
    /// Shared aggregate cell for keys folded past the cap.
    overflow: Arc<C>,
    /// How many `get` calls were folded into the overflow cell.
    folded: AtomicU64,
}

impl<K: Eq + Hash + Clone + Ord, C: Default> Default for Family<K, C> {
    fn default() -> Family<K, C> {
        Family::new()
    }
}

impl<K: Eq + Hash + Clone + Ord, C: Default> Family<K, C> {
    /// Creates an empty, unbounded family.
    pub fn new() -> Family<K, C> {
        Family::bounded(usize::MAX)
    }

    /// Creates an empty family holding at most `cap` distinct keys
    /// (minimum 1); new keys beyond the cap share one overflow cell.
    pub fn bounded(cap: usize) -> Family<K, C> {
        Family {
            cells: RwLock::new(HashMap::new()),
            cap: cap.max(1),
            overflow: Arc::new(C::default()),
            folded: AtomicU64::new(0),
        }
    }

    /// Returns the cell for `key`, creating it on first use. Once the
    /// family holds `cap` distinct keys, unseen keys get the shared
    /// overflow cell instead (existing keys keep their own cell).
    pub fn get(&self, key: &K) -> Arc<C> {
        if let Some(cell) = self
            .cells
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(key)
        {
            return Arc::clone(cell);
        }
        let mut cells = self
            .cells
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if cells.len() >= self.cap && !cells.contains_key(key) {
            self.folded.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&self.overflow);
        }
        Arc::clone(cells.entry(key.clone()).or_default())
    }

    /// The shared aggregate cell that absorbs keys past the cap.
    pub fn overflow_cell(&self) -> &Arc<C> {
        &self.overflow
    }

    /// Number of `get` calls folded into the overflow cell so far.
    pub fn folded_gets(&self) -> u64 {
        self.folded.load(Ordering::Relaxed)
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.cells
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// True when no key has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All cells, sorted by key for deterministic exposition output.
    pub fn snapshot(&self) -> Vec<(K, Arc<C>)> {
        let mut out: Vec<(K, Arc<C>)> = self
            .cells
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, c)| (k.clone(), Arc::clone(c)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug, Default)]
    struct Cell {
        hits: AtomicU64,
    }

    #[test]
    fn same_key_shares_a_cell() {
        let family: Family<u16, Cell> = Family::new();
        family.get(&7).hits.fetch_add(1, Ordering::Relaxed);
        family.get(&7).hits.fetch_add(1, Ordering::Relaxed);
        family.get(&9).hits.fetch_add(1, Ordering::Relaxed);
        assert_eq!(family.len(), 2);
        let snap = family.snapshot();
        assert_eq!(snap[0].0, 7);
        assert_eq!(snap[0].1.hits.load(Ordering::Relaxed), 2);
        assert_eq!(snap[1].0, 9);
        assert_eq!(snap[1].1.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_bumps_are_all_counted() {
        let family: std::sync::Arc<Family<u16, Cell>> = std::sync::Arc::new(Family::new());
        let threads: Vec<_> = (0..4u16)
            .map(|t| {
                let family = family.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        family.get(&(t % 2)).hits.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("bumper must not panic");
        }
        let total: u64 = family
            .snapshot()
            .iter()
            .map(|(_, c)| c.hits.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 4_000);
    }

    #[test]
    fn bounded_family_folds_new_keys_past_cap() {
        let family: Family<u32, Cell> = Family::bounded(3);
        for key in 0..10u32 {
            family.get(&key).hits.fetch_add(1, Ordering::Relaxed);
        }
        // Only the first 3 keys got their own cell.
        assert_eq!(family.len(), 3);
        assert_eq!(family.folded_gets(), 7);
        assert_eq!(family.overflow_cell().hits.load(Ordering::Relaxed), 7);
        // Existing keys keep working past the cap.
        family.get(&1).hits.fetch_add(1, Ordering::Relaxed);
        assert_eq!(family.folded_gets(), 7);
        let snap = family.snapshot();
        assert_eq!(snap[1].1.hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unbounded_family_never_folds() {
        let family: Family<u32, Cell> = Family::new();
        for key in 0..100u32 {
            family.get(&key).hits.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(family.len(), 100);
        assert_eq!(family.folded_gets(), 0);
        assert_eq!(family.overflow_cell().hits.load(Ordering::Relaxed), 0);
    }
}
