//! Log-linear ("HDR-style") histograms over `u64` values.
//!
//! Values below `2^SUB_BUCKET_BITS` are counted exactly; above that each
//! power-of-two octave is split into `2^SUB_BUCKET_BITS` equal sub-buckets,
//! so any recorded value lands in a bucket whose width is at most
//! `value >> SUB_BUCKET_BITS`. Percentile readouts therefore carry a
//! relative error bounded by `2^-SUB_BUCKET_BITS` (~3.1%) while the whole
//! table stays a fixed 1 920 buckets — small enough to keep one histogram
//! per pipeline stage resident and merge-free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave is split into `2^SUB_BUCKET_BITS`
/// linear sub-buckets, bounding relative quantile error by `2^-5 = 3.125%`.
pub const SUB_BUCKET_BITS: u32 = 5;

const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const SUB_MASK: u64 = (SUB_BUCKETS - 1) as u64;

/// Total bucket count: one exact bucket per value in `0..2^b`, then
/// `2^b` sub-buckets for each of the `64 - b` remaining octaves.
pub const BUCKETS: usize = (65 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index (monotone non-decreasing in `value`).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let magnitude = 63 - value.leading_zeros();
    let shift = magnitude - SUB_BUCKET_BITS;
    (((shift + 1) as usize) << SUB_BUCKET_BITS) + ((value >> shift) & SUB_MASK) as usize
}

/// Highest value mapping to bucket `index` (the inverse used for readout;
/// reporting the bucket top makes quantiles an over-estimate by at most one
/// bucket width, i.e. `exact <= reported <= exact + (exact >> SUB_BUCKET_BITS)`).
#[inline]
fn bucket_top(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let shift = (index >> SUB_BUCKET_BITS) as u32 - 1;
    let base = (SUB_BUCKETS as u64 + (index as u64 & SUB_MASK)) << shift;
    base + ((1u64 << shift) - 1)
}

/// Percentile summary of one latency histogram, in the histogram's unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Median (bucket-top, <=3.1% high).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

/// A single-writer log-linear histogram. See the module docs for the
/// bucketing scheme; use [`AtomicHistogram`] when several threads record.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest bucket-top `v` such that at least `ceil(q * count)` recorded
    /// values are `<= v`. `q` is clamped to `(0, 1]`; returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(f64::MIN_POSITIVE, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_top(index);
            }
        }
        self.max
    }

    /// p50/p90/p99/p999 plus count and exact max, in one pass-friendly struct.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max: self.max(),
        }
    }

    /// Approximate count of recorded values `<= value`: counts every bucket
    /// up to and including `value`'s bucket, so the answer may over-count by
    /// at most one bucket width (`value >> SUB_BUCKET_BITS`).
    pub fn count_le(&self, value: u64) -> u64 {
        self.counts[..=bucket_index(value)].iter().sum()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates non-empty buckets as `(bucket_top, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (bucket_top(i), c))
    }
}

/// Lock-free multi-writer histogram: every field is a relaxed atomic, so
/// [`AtomicHistogram::record`] is wait-free on the reader-free hot path and
/// imposes no ordering on surrounding code. Readers take a [`snapshot`]
/// (not a consistent cut — counts may lag sums by in-flight records, which
/// is fine for monitoring).
///
/// [`snapshot`]: AtomicHistogram::snapshot
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty atomic histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed; safe from any thread).
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, value);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain [`Histogram`] for readout.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// `fetch_add` that clamps at `u64::MAX` instead of wrapping. Uses a CAS
/// loop, so reserve it for sampled / rare-path sums.
fn saturating_fetch_add(cell: &AtomicU64, value: u64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(value);
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_top(bucket_index(v)), v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_bounds_error() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must not decrease (v={v})");
            assert!(idx < BUCKETS);
            let top = bucket_top(idx);
            assert!(top >= v, "bucket top below value (v={v} top={top})");
            assert!(
                top - v <= (v >> SUB_BUCKET_BITS),
                "bucket wider than 2^-b relative (v={v} top={top})"
            );
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_top(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_match_exact_on_uniform_ramp() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=10_000u64).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = values[((q * values.len() as f64).ceil() as usize).max(1) - 1];
            let approx = h.percentile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert!(
                approx - exact <= exact >> SUB_BUCKET_BITS,
                "q={q}: {approx} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);

        let a = AtomicHistogram::new();
        a.record(u64::MAX);
        a.record(u64::MAX);
        assert_eq!(a.snapshot().sum(), u64::MAX);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let plain = {
            let mut h = Histogram::new();
            for v in [0, 1, 31, 32, 33, 1_000, 123_456_789] {
                h.record(v);
            }
            h
        };
        let atomic = AtomicHistogram::new();
        for v in [0, 1, 31, 32, 33, 1_000, 123_456_789] {
            atomic.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum(), plain.sum());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.summary(), plain.summary());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000);
        assert_eq!(a.count_le(100), 2);
    }

    #[test]
    fn count_le_is_cumulative() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 10, 100, 1_000] {
            h.record(v);
        }
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(10), 3);
        assert_eq!(h.count_le(u64::MAX), 5);
    }
}
