//! Fixed-memory streaming sketches for attack-shape summaries.
//!
//! Exact per-key state is unaffordable at ingress scale — a hostile
//! keyspace (spoofed sources are arbitrary 32-bit addresses) can force an
//! exact counter map to grow without bound. Each structure here answers
//! one shape question in memory fixed at construction, with a proven
//! error bound, and merges losslessly with a sibling built with the same
//! parameters (so per-interval sketches can roll up into longer windows):
//!
//! * [`CountMin`] — point-frequency estimates. Never underestimates;
//!   overestimates by at most `ε·N` with probability `1 − δ` for
//!   `width ≥ ⌈e/ε⌉`, `depth ≥ ⌈ln(1/δ)⌉` (Cormode & Muthukrishnan 2005).
//! * [`SpaceSaving`] — top-K heavy hitters. With capacity `m` over a
//!   stream of `N` updates, every reported count overestimates the true
//!   count by at most its recorded error, and that error is `≤ N/m`;
//!   any key with true count `> N/m` is guaranteed present (Metwally,
//!   Agrawal & El Abbadi 2005).
//! * [`Hll`] — distinct-count estimates, HyperLogLog-style. With
//!   `m = 2^p` one-byte registers the standard error is `≈ 1.04/√m`
//!   (Flajolet et al. 2007); small cardinalities fall back to linear
//!   counting over empty registers.
//!
//! All three are single-writer (`&mut self` on the record path) like
//! [`crate::Histogram`]; wrap in a lock for shared use. No allocation
//! happens after construction — [`SpaceSaving`] pre-reserves its index so
//! evictions never rehash, and [`SpaceSaving::top_into`] writes into a
//! caller-provided slice — so a sampled hot path can update them inside a
//! zero-allocation budget.

/// Final avalanche of splitmix64: a cheap, well-mixed 64-bit hash for
/// integer keys. Distinct seeds give (empirically) independent-enough
/// hash functions for the Count-Min rows.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Count-Min sketch over `u64` keys.
///
/// `depth` rows of `width` counters; an update adds to one counter per
/// row, an estimate takes the minimum across rows. Collisions only ever
/// *inflate* a counter, hence the one-sided bound: for any key,
/// `true ≤ estimate ≤ true + ε·N` with probability `≥ 1 − δ`, where
/// `ε = e/width`, `δ = e^−depth`, and `N` is the total count recorded.
#[derive(Debug, Clone)]
pub struct CountMin {
    /// Row length; power of two so the row index is a mask, not a modulo.
    width: usize,
    depth: usize,
    /// `depth × width` counters, row-major.
    rows: Vec<u64>,
    /// Total weight recorded (the `N` in the error bound).
    total: u64,
}

impl CountMin {
    /// Creates a sketch with `width` rounded up to a power of two
    /// (minimum 16) and `depth` clamped to `1..=8`. Memory is
    /// `width × depth × 8` bytes, allocated here and never again.
    pub fn new(width: usize, depth: usize) -> CountMin {
        let width = width.max(16).next_power_of_two();
        let depth = depth.clamp(1, 8);
        CountMin {
            width,
            depth,
            rows: vec![0; width * depth],
            total: 0,
        }
    }

    /// Adds `count` occurrences of `key`.
    #[inline]
    pub fn record(&mut self, key: u64, count: u64) {
        let mask = (self.width - 1) as u64;
        for row in 0..self.depth {
            let idx = (mix64(key ^ ((row as u64 + 1) << 56)) & mask) as usize;
            self.rows[row * self.width + idx] += count;
        }
        self.total += count;
    }

    /// Point-frequency estimate for `key`: never less than the true
    /// count, at most `true + e/width × total()` w.p. `1 − e^−depth`.
    pub fn estimate(&self, key: u64) -> u64 {
        let mask = (self.width - 1) as u64;
        let mut best = u64::MAX;
        for row in 0..self.depth {
            let idx = (mix64(key ^ ((row as u64 + 1) << 56)) & mask) as usize;
            best = best.min(self.rows[row * self.width + idx]);
        }
        if best == u64::MAX {
            0
        } else {
            best
        }
    }

    /// Total weight recorded — the `N` in the `ε·N` bound.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Row length (power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Folds `other` in (counter-wise sum). Panics if dimensions differ —
    /// merging differently-shaped sketches is a construction bug.
    pub fn merge(&mut self, other: &CountMin) {
        assert_eq!(self.width, other.width, "CountMin width mismatch");
        assert_eq!(self.depth, other.depth, "CountMin depth mismatch");
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Zeroes every counter without releasing memory.
    pub fn reset(&mut self) {
        self.rows.fill(0);
        self.total = 0;
    }
}

/// One monitored key in a [`SpaceSaving`] summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopEntry {
    /// The key.
    pub key: u64,
    /// Estimated count; overestimates the true count by at most `err`.
    pub count: u64,
    /// Maximum possible overestimate for this entry (the evicted
    /// count it inherited its slot from).
    pub err: u64,
}

/// SpaceSaving heavy-hitter summary over `u64` keys.
///
/// Keeps exactly `capacity` monitored keys. A hit on a monitored key
/// increments it; a new key evicts the current minimum, inheriting its
/// count (recorded as `err`). Guarantees, for `N` total updates:
/// every `count ≥ true count`, `count − err ≤ true count`, `err ≤ N/capacity`,
/// and any key with `true count > N/capacity` is monitored.
#[derive(Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<TopEntry>,
    /// key → index into `entries`. Pre-reserved for `capacity + 1` keys so
    /// the steady-state remove+insert at eviction never reallocates.
    index: std::collections::HashMap<u64, usize>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a summary monitoring at most `capacity` keys (minimum 1).
    pub fn new(capacity: usize) -> SpaceSaving {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: std::collections::HashMap::with_capacity(capacity + 1),
            total: 0,
        }
    }

    /// Adds `count` occurrences of `key`.
    pub fn record(&mut self, key: u64, count: u64) {
        self.total += count;
        if let Some(&i) = self.index.get(&key) {
            self.entries[i].count += count;
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(key, self.entries.len());
            self.entries.push(TopEntry { key, count, err: 0 });
            return;
        }
        // Evict the minimum-count entry; the newcomer inherits its count
        // as the upper bound on overestimation.
        let (mut min_i, mut min_count) = (0, u64::MAX);
        for (i, e) in self.entries.iter().enumerate() {
            if e.count < min_count {
                min_i = i;
                min_count = e.count;
            }
        }
        let evicted = self.entries[min_i];
        self.index.remove(&evicted.key);
        self.index.insert(key, min_i);
        self.entries[min_i] = TopEntry {
            key,
            count: evicted.count + count,
            err: evicted.count,
        };
    }

    /// Total updates recorded — the `N` in the `N/capacity` bound.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of keys currently monitored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the top entries by estimated count (descending, key
    /// ascending on ties) into `out`, returning how many were written.
    /// Selection-sorts into the caller's slice so the hot seal path
    /// allocates nothing.
    pub fn top_into(&self, out: &mut [TopEntry]) -> usize {
        let n = out.len().min(self.entries.len());
        if n == 0 {
            return 0;
        }
        // Track which source entries were already taken (capacity is
        // small — tens — so O(n·cap) scans beat allocating a sort buffer).
        let mut taken = [false; 256];
        if self.entries.len() > taken.len() {
            // Oversized summary: fall back to an allocating sort.
            let mut sorted = self.entries.clone();
            sorted.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
            out[..n].copy_from_slice(&sorted[..n]);
            return n;
        }
        for slot in out.iter_mut().take(n) {
            let mut best: Option<usize> = None;
            for (i, e) in self.entries.iter().enumerate() {
                if taken[i] {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) => {
                        let bb = &self.entries[b];
                        if e.count > bb.count || (e.count == bb.count && e.key < bb.key) {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            let i = best.expect("n bounded by entries.len()");
            taken[i] = true;
            *slot = self.entries[i];
        }
        n
    }

    /// Top entries by estimated count, descending (allocating variant).
    pub fn top(&self, k: usize) -> Vec<TopEntry> {
        let mut out = vec![
            TopEntry {
                key: 0,
                count: 0,
                err: 0
            };
            k.min(self.entries.len())
        ];
        let n = self.top_into(&mut out);
        out.truncate(n);
        out
    }

    /// Folds `other` in. Merged counts stay one-sided (never
    /// underestimate) and the `N/capacity` bound holds for the combined
    /// total; keys only monitored in `other` are recorded with their
    /// count + error as a conservative insertion.
    pub fn merge(&mut self, other: &SpaceSaving) {
        for e in &other.entries {
            self.total += e.count;
            if let Some(&i) = self.index.get(&e.key) {
                self.entries[i].count += e.count;
                self.entries[i].err += e.err;
            } else {
                // Route through record's eviction logic, then restore the
                // entry's carried error on top of whatever it inherited.
                self.total -= e.count; // record() re-adds it
                self.record(e.key, e.count);
                if let Some(&i) = self.index.get(&e.key) {
                    self.entries[i].err += e.err;
                }
            }
        }
    }

    /// Clears all monitored keys without releasing memory.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.total = 0;
    }
}

/// HyperLogLog-style distinct counter over `u64` keys.
///
/// `2^p` one-byte registers; each key updates one register with the
/// leading-zero rank of its hash remainder. The harmonic-mean estimate
/// has standard error `≈ 1.04/√(2^p)` (~3.2% at `p = 10`, 1 KiB);
/// cardinalities below `2.5·m` use linear counting over empty registers
/// instead, which is more accurate in that range.
#[derive(Debug, Clone)]
pub struct Hll {
    p: u32,
    registers: Vec<u8>,
}

impl Hll {
    /// Creates a counter with `2^p` registers, `p` clamped to `4..=16`.
    pub fn new(p: u32) -> Hll {
        let p = p.clamp(4, 16);
        Hll {
            p,
            registers: vec![0; 1 << p],
        }
    }

    /// Records one observation of `key`. Idempotent per key-hash.
    #[inline]
    pub fn record(&mut self, key: u64) {
        let h = mix64(key);
        let idx = (h >> (64 - self.p)) as usize;
        // Rank of the first set bit in the remaining 64−p bits, 1-based.
        let rest = h << self.p;
        let rank = (rest.leading_zeros() + 1).min(64 - self.p + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct keys recorded.
    pub fn estimate(&self) -> u64 {
        let m = self.registers.len() as f64;
        let mut sum = 0.0;
        let mut zeros = 0u64;
        for &r in &self.registers {
            sum += 1.0 / f64::from(1u32 << u32::from(r.min(31)));
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let raw = alpha * m * m / sum;
        let est = if raw <= 2.5 * m && zeros > 0 {
            // Linear counting: better for small cardinalities.
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        est.round() as u64
    }

    /// Register precision exponent (`2^p` registers).
    pub fn precision(&self) -> u32 {
        self.p
    }

    /// Folds `other` in (register-wise max — exact for set union).
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &Hll) {
        assert_eq!(self.p, other.p, "Hll precision mismatch");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Zeroes every register without releasing memory.
    pub fn reset(&mut self) {
        self.registers.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_min_never_underestimates() {
        let mut cm = CountMin::new(64, 4);
        for k in 0..200u64 {
            cm.record(k, k + 1);
        }
        for k in 0..200u64 {
            assert!(cm.estimate(k) > k, "underestimated key {k}");
        }
        assert_eq!(cm.total(), (1..=200).sum::<u64>());
        assert_eq!(cm.estimate(9_999), cm.estimate(9_999)); // deterministic
    }

    #[test]
    fn count_min_merge_equals_combined_stream() {
        let mut a = CountMin::new(64, 4);
        let mut b = CountMin::new(64, 4);
        let mut whole = CountMin::new(64, 4);
        for k in 0..100u64 {
            a.record(k, 2);
            whole.record(k, 2);
        }
        for k in 50..150u64 {
            b.record(k, 3);
            whole.record(k, 3);
        }
        a.merge(&b);
        for k in 0..150u64 {
            assert_eq!(a.estimate(k), whole.estimate(k));
        }
        assert_eq!(a.total(), whole.total());
    }

    #[test]
    fn count_min_reset_zeroes() {
        let mut cm = CountMin::new(32, 2);
        cm.record(7, 100);
        cm.reset();
        assert_eq!(cm.estimate(7), 0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn space_saving_finds_the_heavy_hitter() {
        let mut ss = SpaceSaving::new(8);
        // One key gets half the stream; noise keys churn the rest.
        for i in 0..1_000u64 {
            ss.record(42, 1);
            ss.record(1_000 + i, 1);
        }
        let top = ss.top(3);
        assert_eq!(top[0].key, 42);
        assert!(top[0].count >= 1_000);
        // Guaranteed bound: count − err ≤ true ≤ count.
        assert!(top[0].count - top[0].err <= 1_000);
        assert!(ss.total() == 2_000);
    }

    #[test]
    fn space_saving_error_bounded_by_n_over_m() {
        let mut ss = SpaceSaving::new(10);
        for i in 0..5_000u64 {
            ss.record(i % 100, 1);
        }
        let bound = ss.total() / 10;
        for e in ss.top(10) {
            assert!(e.err <= bound, "err {} > N/m {}", e.err, bound);
        }
    }

    #[test]
    fn space_saving_top_into_matches_top() {
        let mut ss = SpaceSaving::new(16);
        for i in 0..500u64 {
            ss.record(i % 23, i % 7 + 1);
        }
        let mut buf = [TopEntry {
            key: 0,
            count: 0,
            err: 0,
        }; 8];
        let n = ss.top_into(&mut buf);
        assert_eq!(ss.top(8), buf[..n].to_vec());
    }

    #[test]
    fn space_saving_merge_keeps_one_sided_counts() {
        let mut a = SpaceSaving::new(8);
        let mut b = SpaceSaving::new(8);
        let mut exact = std::collections::HashMap::new();
        for i in 0..300u64 {
            a.record(i % 12, 1);
            *exact.entry(i % 12).or_insert(0u64) += 1;
        }
        for i in 0..300u64 {
            b.record(i % 9, 1);
            *exact.entry(i % 9).or_insert(0u64) += 1;
        }
        a.merge(&b);
        assert_eq!(a.total(), 600);
        for e in a.top(8) {
            let truth = exact[&e.key];
            assert!(e.count >= truth, "merged count must not underestimate");
        }
    }

    #[test]
    fn hll_estimates_within_advertised_error() {
        let mut hll = Hll::new(10);
        let n = 10_000u64;
        for k in 0..n {
            hll.record(k);
        }
        let est = hll.estimate() as f64;
        // 1.04/√1024 ≈ 3.25% standard error; allow 5σ for a fixed seed.
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.17, "HLL estimate {est} off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn hll_small_range_is_near_exact() {
        let mut hll = Hll::new(10);
        for k in 0..50u64 {
            hll.record(k);
            hll.record(k); // duplicates must not inflate
        }
        let est = hll.estimate();
        assert!((45..=55).contains(&est), "linear-count estimate {est}");
    }

    #[test]
    fn hll_merge_is_union() {
        let mut a = Hll::new(10);
        let mut b = Hll::new(10);
        let mut whole = Hll::new(10);
        for k in 0..3_000u64 {
            a.record(k);
            whole.record(k);
        }
        for k in 2_000..5_000u64 {
            b.record(k);
            whole.record(k);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), whole.estimate());
    }
}
