//! Fixed-capacity ring of per-interval aggregate snapshots.
//!
//! The attack-shape layer seals one aggregate value per time interval
//! (verdict mix, rates, top-K tables). [`WindowRing`] keeps the newest
//! `capacity` of them in a pre-allocated ring: pushing the
//! `capacity + 1`-th interval overwrites the oldest deterministically, so
//! "what did the last N intervals look like?" is answerable forever in
//! memory fixed at construction.
//!
//! Slots carry the caller's interval sequence number, so a reader can
//! detect gaps (intervals that were never sealed because nothing ran)
//! rather than silently misattributing values to the wrong wall-clock
//! span.

/// A pre-allocated ring of `(sequence, value)` interval slots.
///
/// Single-writer like the sketches; `push` moves the value in without
/// allocating. Wraparound is deterministic: after `k` pushes the ring
/// holds exactly the last `min(k, capacity)` values in push order.
#[derive(Debug)]
pub struct WindowRing<T> {
    slots: Vec<(u64, T)>,
    capacity: usize,
    /// Total pushes ever; `len = min(pushed, capacity)`.
    pushed: u64,
}

impl<T: Default + Clone> WindowRing<T> {
    /// Creates a ring holding at most `capacity` intervals (minimum 1).
    /// All slots are default-constructed up front so later pushes never
    /// allocate (for `T` whose clone is allocation-free, e.g. `Copy`).
    pub fn new(capacity: usize) -> WindowRing<T> {
        let capacity = capacity.max(1);
        WindowRing {
            slots: vec![(0, T::default()); capacity],
            capacity,
            pushed: 0,
        }
    }

    /// Seals one interval: stores `value` under the caller's interval
    /// sequence number, overwriting the oldest slot once full.
    pub fn push(&mut self, seq: u64, value: T) {
        let idx = (self.pushed % self.capacity as u64) as usize;
        self.slots[idx] = (seq, value);
        self.pushed += 1;
    }

    /// Number of intervals currently held.
    pub fn len(&self) -> usize {
        self.pushed.min(self.capacity as u64) as usize
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Maximum number of intervals held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total intervals ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The newest `n` intervals, newest first, as `(seq, value)` clones.
    pub fn last(&self, n: usize) -> Vec<(u64, T)> {
        let held = self.len();
        let n = n.min(held);
        let mut out = Vec::with_capacity(n);
        for back in 0..n {
            let idx = ((self.pushed - 1 - back as u64) % self.capacity as u64) as usize;
            out.push(self.slots[idx].clone());
        }
        out
    }

    /// Visits the newest `n` intervals, newest first, without cloning —
    /// for render paths that must not allocate per slot.
    pub fn for_each_last(&self, n: usize, mut f: impl FnMut(u64, &T)) {
        let held = self.len();
        let n = n.min(held);
        for back in 0..n {
            let idx = ((self.pushed - 1 - back as u64) % self.capacity as u64) as usize;
            let (seq, ref value) = self.slots[idx];
            f(seq, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_deterministically() {
        let mut ring: WindowRing<u64> = WindowRing::new(4);
        assert!(ring.is_empty());
        for seq in 0..10u64 {
            ring.push(seq, seq * 100);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 10);
        // Newest first: seqs 9, 8, 7, 6.
        let last = ring.last(10);
        assert_eq!(
            last,
            vec![(9, 900), (8, 800), (7, 700), (6, 600)],
            "wraparound must keep exactly the newest capacity slots"
        );
    }

    #[test]
    fn last_n_truncates_to_held() {
        let mut ring: WindowRing<u8> = WindowRing::new(8);
        ring.push(1, 10);
        ring.push(2, 20);
        assert_eq!(ring.last(5), vec![(2, 20), (1, 10)]);
        assert_eq!(ring.last(1), vec![(2, 20)]);
        assert_eq!(ring.last(0), vec![]);
    }

    #[test]
    fn for_each_last_matches_last() {
        let mut ring: WindowRing<u32> = WindowRing::new(3);
        for seq in 0..7u64 {
            ring.push(seq, seq as u32);
        }
        let mut seen = Vec::new();
        ring.for_each_last(3, |seq, v| seen.push((seq, *v)));
        assert_eq!(seen, ring.last(3));
    }

    #[test]
    fn seq_gaps_are_preserved() {
        let mut ring: WindowRing<u8> = WindowRing::new(4);
        ring.push(3, 1);
        ring.push(9, 2); // intervals 4..=8 never sealed
        let last = ring.last(2);
        assert_eq!(last[0].0, 9);
        assert_eq!(last[1].0, 3);
    }
}
