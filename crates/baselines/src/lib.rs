//! Comparator spoofing detectors the paper positions InFilter against
//! (§2, Related Work).
//!
//! * [`Urpf`] — unicast Reverse Path Forwarding: accept a packet only if it
//!   arrived on the interface the local routing table would use to reach
//!   its source. The paper's critique: the symmetry assumption "is not
//!   necessarily true at boundaries between large IP networks", so routing
//!   asymmetry turns into false positives.
//! * [`HistoryFilter`] — Peng et al.'s history-based IP filtering: an edge
//!   router admits packets from previously seen addresses when overloaded.
//!   The paper's critique: it uses no cross-router information and targets
//!   high-volume floods, not stealthy single-packet attacks.
//! * [`HopCountFilter`] — TTL-based hop-count filtering (one of the
//!   routing-based methods surveyed in [Templeton]): spoofed packets tend
//!   to arrive with a hop count inconsistent with their claimed source.
//!
//! All three expose the same simple contract — train on clean traffic,
//! then `check` flows — so `infilter-experiments` can run them on the
//! identical testbed workload as InFilter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod history;
mod hopcount;
mod urpf;

pub use history::{HistoryConfig, HistoryFilter};
pub use hopcount::HopCountFilter;
pub use urpf::{Urpf, UrpfMode};
