use std::collections::HashMap;
use std::net::Ipv4Addr;

use infilter_net::Prefix;
use serde::{Deserialize, Serialize};

/// Tuning for [`HistoryFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryConfig {
    /// Aggregation granularity of the history (prefix length; Peng et al.
    /// track /24 networks to bound table size).
    pub prefix_len: u8,
    /// Appearances during training before an address range counts as
    /// "previously seen".
    pub min_sightings: u32,
}

impl Default for HistoryConfig {
    fn default() -> HistoryConfig {
        HistoryConfig {
            prefix_len: 24,
            min_sightings: 1,
        }
    }
}

/// History-based IP filtering (Peng, Leckie, Kotagiri — ICC 2003).
///
/// "The edge router keeps a history of all the legitimate IP addresses
/// which have previously appeared in the network. When the edge router is
/// overloaded, this history is used to decide whether to admit an incoming
/// IP packet." Admission is binary and network-wide: unlike InFilter the
/// scheme uses no per-ingress information, so a spoofed source that *ever*
/// legitimately appeared anywhere is admitted.
///
/// # Examples
///
/// ```
/// use infilter_baselines::{HistoryConfig, HistoryFilter};
///
/// let mut h = HistoryFilter::new(HistoryConfig::default());
/// h.observe("3.0.0.5".parse().unwrap());
/// h.set_overloaded(true);
/// assert!(h.admit("3.0.0.9".parse().unwrap()));   // same /24 seen before
/// assert!(!h.admit("200.1.1.1".parse().unwrap())); // never seen: dropped
/// ```
#[derive(Debug, Clone)]
pub struct HistoryFilter {
    cfg: HistoryConfig,
    history: HashMap<Prefix, u32>,
    overloaded: bool,
}

impl HistoryFilter {
    /// Creates an empty filter (not overloaded).
    pub fn new(cfg: HistoryConfig) -> HistoryFilter {
        HistoryFilter {
            cfg,
            history: HashMap::new(),
            overloaded: false,
        }
    }

    /// Records a legitimate appearance of `src` (training / calm periods).
    pub fn observe(&mut self, src: Ipv4Addr) {
        let key = Prefix::host(src).truncate(self.cfg.prefix_len);
        *self.history.entry(key).or_insert(0) += 1;
    }

    /// Whether `src`'s range is in the admission history.
    pub fn is_known(&self, src: Ipv4Addr) -> bool {
        let key = Prefix::host(src).truncate(self.cfg.prefix_len);
        self.history
            .get(&key)
            .is_some_and(|&n| n >= self.cfg.min_sightings)
    }

    /// Toggles the overload state (the filter only drops while overloaded).
    pub fn set_overloaded(&mut self, overloaded: bool) {
        self.overloaded = overloaded;
    }

    /// Whether the filter is currently dropping unknown sources.
    pub fn is_overloaded(&self) -> bool {
        self.overloaded
    }

    /// Admission decision for a packet from `src`.
    pub fn admit(&self, src: Ipv4Addr) -> bool {
        !self.overloaded || self.is_known(src)
    }

    /// Number of distinct ranges in the history.
    pub fn history_size(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_everything_when_not_overloaded() {
        let h = HistoryFilter::new(HistoryConfig::default());
        assert!(h.admit("1.2.3.4".parse().unwrap()));
        assert!(!h.is_overloaded());
    }

    #[test]
    fn overload_gates_on_history() {
        let mut h = HistoryFilter::new(HistoryConfig::default());
        h.observe("3.0.0.5".parse().unwrap());
        h.set_overloaded(true);
        assert!(h.admit("3.0.0.200".parse().unwrap())); // same /24
        assert!(!h.admit("3.0.1.200".parse().unwrap())); // different /24
    }

    #[test]
    fn min_sightings_requires_repeats() {
        let mut h = HistoryFilter::new(HistoryConfig {
            prefix_len: 32,
            min_sightings: 3,
        });
        let a: Ipv4Addr = "9.9.9.9".parse().unwrap();
        h.observe(a);
        h.observe(a);
        assert!(!h.is_known(a));
        h.observe(a);
        assert!(h.is_known(a));
    }

    #[test]
    fn history_granularity_bounds_table() {
        let mut fine = HistoryFilter::new(HistoryConfig {
            prefix_len: 32,
            min_sightings: 1,
        });
        let mut coarse = HistoryFilter::new(HistoryConfig {
            prefix_len: 16,
            min_sightings: 1,
        });
        for i in 0..100u32 {
            let a = Ipv4Addr::from(0x0a000000 + i);
            fine.observe(a);
            coarse.observe(a);
        }
        assert_eq!(fine.history_size(), 100);
        assert_eq!(coarse.history_size(), 1);
    }

    #[test]
    fn blind_spot_spoofed_but_previously_seen_source() {
        // Documents the weakness InFilter fixes: an attacker spoofing an
        // address that legitimately appeared before is admitted even
        // under overload.
        let mut h = HistoryFilter::new(HistoryConfig::default());
        h.observe("3.0.0.5".parse().unwrap()); // legit customer
        h.set_overloaded(true);
        // Attacker now spoofs 3.0.0.5 — admitted.
        assert!(h.admit("3.0.0.5".parse().unwrap()));
    }
}
