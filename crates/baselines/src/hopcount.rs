use std::collections::HashMap;
use std::net::Ipv4Addr;

use infilter_net::Prefix;
use serde::{Deserialize, Serialize};

/// TTL-derived hop-count filtering.
///
/// Legitimate packets from a source arrive with a hop count determined by
/// the (stable) route from that source; a spoofer cannot observe the
/// victim-side hop count of the address it forges, so a mismatch signals
/// spoofing. The filter learns per-/24 expected hop counts from clean
/// traffic and checks arrivals within a tolerance.
///
/// # Examples
///
/// ```
/// use infilter_baselines::HopCountFilter;
///
/// let mut hcf = HopCountFilter::new(24, 1);
/// hcf.train("3.0.0.5".parse().unwrap(), 14);
/// assert!(hcf.check("3.0.0.9".parse().unwrap(), 14));
/// assert!(hcf.check("3.0.0.9".parse().unwrap(), 15)); // within tolerance
/// assert!(!hcf.check("3.0.0.9".parse().unwrap(), 4)); // spoofed
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HopCountFilter {
    prefix_len: u8,
    tolerance: u8,
    expected: HashMap<Prefix, u8>,
}

impl HopCountFilter {
    /// Creates an empty filter learning at `prefix_len` granularity and
    /// accepting deviations up to `tolerance` hops.
    pub fn new(prefix_len: u8, tolerance: u8) -> HopCountFilter {
        HopCountFilter {
            prefix_len,
            tolerance,
            expected: HashMap::new(),
        }
    }

    /// Learns (or refreshes) the expected hop count for `src`'s range.
    pub fn train(&mut self, src: Ipv4Addr, hops: u8) {
        let key = Prefix::host(src).truncate(self.prefix_len);
        self.expected.insert(key, hops);
    }

    /// The learned hop count for `src`'s range.
    pub fn expected(&self, src: Ipv4Addr) -> Option<u8> {
        let key = Prefix::host(src).truncate(self.prefix_len);
        self.expected.get(&key).copied()
    }

    /// Whether a packet claiming `src` with observed `hops` is consistent.
    /// Unknown ranges pass (the scheme can only vet what it has learned).
    pub fn check(&self, src: Ipv4Addr, hops: u8) -> bool {
        match self.expected(src) {
            Some(e) => e.abs_diff(hops) <= self.tolerance,
            None => true,
        }
    }

    /// Number of learned ranges.
    pub fn table_size(&self) -> usize {
        self.expected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_sources_pass() {
        let hcf = HopCountFilter::new(24, 0);
        assert!(hcf.check("1.2.3.4".parse().unwrap(), 99));
        assert_eq!(hcf.table_size(), 0);
    }

    #[test]
    fn tolerance_is_symmetric() {
        let mut hcf = HopCountFilter::new(24, 2);
        hcf.train("9.9.9.1".parse().unwrap(), 10);
        for hops in 8..=12 {
            assert!(hcf.check("9.9.9.200".parse().unwrap(), hops), "hops {hops}");
        }
        assert!(!hcf.check("9.9.9.200".parse().unwrap(), 7));
        assert!(!hcf.check("9.9.9.200".parse().unwrap(), 13));
    }

    #[test]
    fn retraining_updates_expectation() {
        let mut hcf = HopCountFilter::new(24, 0);
        let a: Ipv4Addr = "9.9.9.1".parse().unwrap();
        hcf.train(a, 10);
        assert_eq!(hcf.expected(a), Some(10));
        hcf.train(a, 12); // route change re-learned
        assert_eq!(hcf.expected(a), Some(12));
        assert!(hcf.check(a, 12));
        assert!(!hcf.check(a, 10));
        assert_eq!(hcf.table_size(), 1);
    }

    #[test]
    fn granularity_shares_expectation_within_prefix() {
        let mut hcf = HopCountFilter::new(16, 0);
        hcf.train("10.1.0.1".parse().unwrap(), 9);
        assert_eq!(hcf.expected("10.1.255.255".parse().unwrap()), Some(9));
        assert_eq!(hcf.expected("10.2.0.1".parse().unwrap()), None);
    }

    #[test]
    fn blind_spot_spoofer_at_same_distance() {
        // Documents the known weakness: a spoofer whose own route to the
        // victim happens to have the same hop count is invisible.
        let mut hcf = HopCountFilter::new(24, 0);
        hcf.train("9.9.9.1".parse().unwrap(), 10);
        // Attacker is also 10 hops away and spoofs 9.9.9.1.
        assert!(hcf.check("9.9.9.1".parse().unwrap(), 10));
    }
}
