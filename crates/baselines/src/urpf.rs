use std::net::Ipv4Addr;

use infilter_net::{Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};

/// Strictness of the reverse-path check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UrpfMode {
    /// Accept only if the best route to the source leaves through the
    /// arrival interface.
    Strict,
    /// Accept if *any* route to the source exists (catches only fully
    /// unroutable — e.g. unallocated — sources).
    Loose,
}

/// Unicast Reverse Path Forwarding at one router.
///
/// The FIB maps source prefixes to the egress interface the router would
/// use to reach them; [`Urpf::check`] compares that against the interface a
/// packet actually arrived on. Longest-prefix match applies, as in a real
/// FIB.
///
/// # Examples
///
/// ```
/// use infilter_baselines::{Urpf, UrpfMode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut urpf = Urpf::new(UrpfMode::Strict);
/// urpf.add_route("3.0.0.0/11".parse()?, 1);
/// urpf.add_route("3.32.0.0/11".parse()?, 2);
///
/// assert!(urpf.check(1, "3.0.0.5".parse()?));   // symmetric: pass
/// assert!(!urpf.check(1, "3.33.0.5".parse()?)); // wrong interface: drop
/// assert!(!urpf.check(1, "9.9.9.9".parse()?));  // no route: drop
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Urpf {
    mode: UrpfMode,
    fib: PrefixTrie<u16>,
}

impl Urpf {
    /// Creates an empty uRPF checker.
    pub fn new(mode: UrpfMode) -> Urpf {
        Urpf {
            mode,
            fib: PrefixTrie::new(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> UrpfMode {
        self.mode
    }

    /// Installs a FIB route: traffic *to* `prefix` leaves via `interface`.
    pub fn add_route(&mut self, prefix: Prefix, interface: u16) {
        self.fib.insert(prefix, interface);
    }

    /// Number of FIB routes.
    pub fn route_count(&self) -> usize {
        self.fib.len()
    }

    /// Does a packet from `src` arriving on `interface` pass the check?
    pub fn check(&self, interface: u16, src: Ipv4Addr) -> bool {
        match self.fib.lookup(src) {
            None => false,
            Some((_, egress)) => match self.mode {
                UrpfMode::Strict => *egress == interface,
                UrpfMode::Loose => true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib() -> Urpf {
        let mut u = Urpf::new(UrpfMode::Strict);
        u.add_route("3.0.0.0/11".parse().unwrap(), 1);
        u.add_route("3.32.0.0/11".parse().unwrap(), 2);
        u.add_route("0.0.0.0/0".parse().unwrap(), 3); // default via if 3
        u
    }

    #[test]
    fn strict_requires_symmetry() {
        let u = fib();
        assert!(u.check(1, "3.0.0.1".parse().unwrap()));
        assert!(!u.check(2, "3.0.0.1".parse().unwrap()));
        // Falls to the default route → interface 3.
        assert!(u.check(3, "200.1.1.1".parse().unwrap()));
        assert!(!u.check(1, "200.1.1.1".parse().unwrap()));
    }

    #[test]
    fn loose_only_requires_a_route() {
        let mut u = Urpf::new(UrpfMode::Loose);
        u.add_route("3.0.0.0/11".parse().unwrap(), 1);
        assert!(u.check(7, "3.0.0.1".parse().unwrap()));
        assert!(!u.check(7, "9.0.0.1".parse().unwrap()));
        assert_eq!(u.mode(), UrpfMode::Loose);
    }

    #[test]
    fn longest_prefix_decides_egress() {
        let mut u = fib();
        // A /24 inside interface 1's space re-routed via interface 2
        // (asymmetric multihoming — the case the paper says breaks uRPF).
        u.add_route("3.1.2.0/24".parse().unwrap(), 2);
        assert!(u.check(2, "3.1.2.9".parse().unwrap()));
        assert!(!u.check(1, "3.1.2.9".parse().unwrap()));
        assert!(u.check(1, "3.1.3.9".parse().unwrap()));
        assert_eq!(u.route_count(), 4);
    }

    #[test]
    fn empty_fib_drops_everything_even_loose() {
        let u = Urpf::new(UrpfMode::Loose);
        assert!(!u.check(1, "1.2.3.4".parse().unwrap()));
    }
}
