//! Property tests for the KOR structure and the unary encoder.

use infilter_nns::reference::RefNnsStructure;
use infilter_nns::{linear_nn, BitVec, FeatureSpec, NnsParams, NnsStructure, UnaryEncoder};
use proptest::prelude::*;

fn arb_points(d: usize) -> impl Strategy<Value = Vec<BitVec>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), d..=d).prop_map(BitVec::from_bits),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn search_result_distance_is_truthful(points in arb_points(48), query_bits in proptest::collection::vec(any::<bool>(), 48)) {
        let params = NnsParams { d: 48, m1: 2, m2: 8, m3: 2 };
        let s = NnsStructure::build(&points, params, 7).expect("builds");
        let query = BitVec::from_bits(query_bits);
        if let Some(hit) = s.search(&query) {
            prop_assert!(hit.index < points.len());
            prop_assert_eq!(hit.distance, points[hit.index].hamming(&query));
            // Approximate NN can never beat the exact NN.
            let exact = linear_nn(&points, &query).expect("non-empty");
            prop_assert!(hit.distance >= exact.distance);
        }
    }

    #[test]
    fn training_points_are_always_found(points in arb_points(40)) {
        let params = NnsParams { d: 40, m1: 3, m2: 8, m3: 2 };
        let s = NnsStructure::build(&points, params, 3).expect("builds");
        for p in &points {
            let hit = s.search(p).expect("training point must be findable");
            // Exact-duplicate traces can alias, but the distance can never
            // exceed zero for the point itself unless another point shares
            // its trace at the smallest scale — in which case distances tie.
            prop_assert_eq!(hit.distance, points[hit.index].hamming(p));
        }
    }

    #[test]
    fn build_is_deterministic(points in arb_points(32), seed in any::<u64>()) {
        let params = NnsParams { d: 32, m1: 1, m2: 6, m3: 2 };
        let a = NnsStructure::build(&points, params, seed).expect("builds");
        let b = NnsStructure::build(&points, params, seed).expect("builds");
        let q = BitVec::zeros(32);
        prop_assert_eq!(a.search(&q), b.search(&q));
    }

    #[test]
    fn flat_layout_search_matches_reference_layout(
        points in arb_points(40),
        queries in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 40), 1..8),
        seed in any::<u64>(),
    ) {
        let params = NnsParams { d: 40, m1: 2, m2: 7, m3: 3 };
        let flat = NnsStructure::build(&points, params, seed).expect("builds");
        let reference = RefNnsStructure::build(&points, params, seed).expect("builds");
        for q in queries {
            let q = BitVec::from_bits(q);
            prop_assert_eq!(flat.search(&q), reference.search(&q));
        }
        for p in &points {
            prop_assert_eq!(flat.search(p), reference.search(p));
        }
    }

    #[test]
    fn flat_build_arenas_match_reference_tables(points in arb_points(33), seed in any::<u64>()) {
        // Word-for-word: the flat arenas hold exactly the reference layout's
        // test vectors and entries, in scale-major order.
        let params = NnsParams { d: 33, m1: 2, m2: 6, m3: 2 };
        let flat = NnsStructure::build(&points, params, seed).expect("builds");
        let reference = RefNnsStructure::build(&points, params, seed).expect("builds");
        let (ref_tv, ref_entries) = reference.flatten();
        prop_assert_eq!(flat.test_vector_words(), &ref_tv[..]);
        prop_assert_eq!(flat.entry_slots(), &ref_entries[..]);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial(
        points in arb_points(24),
        seed in any::<u64>(),
        threads in 2usize..12,
    ) {
        let params = NnsParams { d: 24, m1: 2, m2: 6, m3: 2 };
        let serial = NnsStructure::build_with_threads(&points, params, seed, 1).expect("builds");
        let parallel = NnsStructure::build_with_threads(&points, params, seed, threads).expect("builds");
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn encoder_distance_bounded_by_dimension(
        a in proptest::collection::vec(0.0f64..1e6, 5),
        b in proptest::collection::vec(0.0f64..1e6, 5),
    ) {
        let enc = UnaryEncoder::new(vec![FeatureSpec::new(0.0, 1e6); 5], 24).expect("valid");
        let ea = enc.encode(&a);
        let eb = enc.encode(&b);
        prop_assert!(ea.hamming(&eb) as usize <= enc.dimension());
        prop_assert_eq!(ea.hamming(&eb), eb.hamming(&ea));
        prop_assert_eq!(enc.encode(&a).hamming(&ea), 0);
    }

    #[test]
    fn unary_encoding_is_monotone_per_feature(v in 0.0f64..1000.0, w in 0.0f64..1000.0) {
        let enc = UnaryEncoder::new(vec![FeatureSpec::new(0.0, 1000.0)], 100).expect("valid");
        let ev = enc.encode(&[v]);
        let ew = enc.encode(&[w]);
        // Count of ones is monotone in the value.
        if v <= w {
            prop_assert!(ev.count_ones() <= ew.count_ones());
        } else {
            prop_assert!(ev.count_ones() >= ew.count_ones());
        }
        // Distance equals the interval difference exactly.
        let expected = (ev.count_ones() as i64 - ew.count_ones() as i64).unsigned_abs() as u32;
        prop_assert_eq!(ev.hamming(&ew), expected);
    }
}
