//! Serde roundtrip of the flat `NnsStructure` and serialized-size
//! comparison against the seed `Vec<BitVec>`-per-table layout.

use infilter_nns::reference::RefNnsStructure;
use infilter_nns::{BitVec, NnsParams, NnsStructure};

fn training_points(d: usize, n: usize) -> Vec<BitVec> {
    (0..n)
        .map(|i| BitVec::from_bits((0..d).map(|b| (b * 7 + i * 13) % 5 < 2)))
        .collect()
}

#[test]
fn flat_structure_roundtrips_through_serde() {
    let params = NnsParams {
        d: 72,
        m1: 2,
        m2: 8,
        m3: 3,
    };
    let points = training_points(params.d, 12);
    let s = NnsStructure::build(&points, params, 42).unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: NnsStructure = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
    // The deserialized structure answers queries identically.
    for p in &points {
        assert_eq!(back.search(p), s.search(p));
    }
    let q = BitVec::from_bits((0..params.d).map(|b| b % 3 == 0));
    assert_eq!(back.search(&q), s.search(&q));
}

#[test]
fn flat_layout_serializes_smaller_than_seed_layout() {
    // The flat layout drops the build-only `entry_dist` scratch (2^m2 bytes
    // per table) and the per-BitVec framing of every test vector and
    // training point, so the same model must serialize strictly smaller.
    let params = NnsParams {
        d: 72,
        m1: 2,
        m2: 8,
        m3: 3,
    };
    let points = training_points(params.d, 12);
    let flat = serde_json::to_string(&NnsStructure::build(&points, params, 42).unwrap())
        .unwrap()
        .len();
    let seed_layout = serde_json::to_string(&RefNnsStructure::build(&points, params, 42).unwrap())
        .unwrap()
        .len();
    assert!(
        flat < seed_layout,
        "flat layout serialized to {flat} bytes, seed layout to {seed_layout}"
    );
}
