use std::fmt;

use serde::{Deserialize, Serialize};

/// A fixed-length bit vector over `{0,1}^d`, packed into 64-bit words.
///
/// Supports the three primitives the KOR algorithms need: bit access,
/// Hamming distance (XOR + popcount) and inner product mod 2 (AND +
/// popcount parity).
///
/// # Examples
///
/// ```
/// use infilter_nns::BitVec;
///
/// let mut a = BitVec::zeros(10);
/// a.set(3, true);
/// a.set(7, true);
/// let mut b = BitVec::zeros(10);
/// b.set(3, true);
/// assert_eq!(a.hamming(&b), 1);
/// assert_eq!(a.dot_mod2(&b), 1);
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> BitVec {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a vector from an iterator of bits.
    ///
    /// Fills 64-bit words directly as the iterator drains — no intermediate
    /// `Vec<bool>`, no per-bit bounds checks.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> BitVec {
        let bits = bits.into_iter();
        let mut words = Vec::with_capacity(bits.size_hint().0.div_ceil(64));
        let mut len = 0usize;
        let mut current = 0u64;
        for b in bits {
            if b {
                current |= 1u64 << (len % 64);
            }
            len += 1;
            if len.is_multiple_of(64) {
                words.push(current);
                current = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(current);
        }
        BitVec { len, words }
    }

    /// Resets to an all-zero vector of length `len`, reusing the existing
    /// word allocation when it is large enough (the scratch-buffer pattern
    /// the zero-allocation encode path relies on).
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Sets the `count` bits starting at `start` to one, whole words at a
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > len`.
    pub fn set_ones(&mut self, start: usize, count: usize) {
        assert!(
            start + count <= self.len,
            "bit range {start}..{} out of range {}",
            start + count,
            self.len
        );
        if count == 0 {
            return;
        }
        let last = start + count - 1;
        let (w0, b0) = (start / 64, start % 64);
        let (w1, b1) = (last / 64, last % 64);
        if w0 == w1 {
            // ((1 << count) - 1) computed in u128 so count == 64 is exact.
            self.words[w0] |= (((1u128 << count) - 1) as u64) << b0;
        } else {
            self.words[w0] |= !0u64 << b0;
            for w in &mut self.words[w0 + 1..w1] {
                *w = !0;
            }
            self.words[w1] |= !0u64 >> (63 - b1);
        }
    }

    /// The backing 64-bit words, least-significant bit first; bits past
    /// `len` in the last word are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Hamming distance between two equally long word slices (XOR +
    /// popcount) — the flat-arena counterpart of [`BitVec::hamming`].
    pub fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len(), "word-count mismatch");
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
    }

    /// Inner product modulo 2 of two equally long word slices (AND +
    /// popcount parity) — the flat-arena counterpart of
    /// [`BitVec::dot_mod2`].
    pub fn dot_mod2_words(a: &[u64], b: &[u64]) -> u8 {
        debug_assert_eq!(a.len(), b.len(), "word-count mismatch");
        // Parity is preserved under word-wise XOR folding, so one popcount
        // at the end replaces one per word.
        let folded = a.iter().zip(b).fold(0u64, |acc, (x, y)| acc ^ (x & y));
        (folded.count_ones() & 1) as u8
    }

    /// The vector length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &BitVec) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch in hamming distance");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Inner product modulo 2 (the KOR `Test` procedure).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot_mod2(&self, other: &BitVec) -> u8 {
        assert_eq!(self.len, other.len, "length mismatch in inner product");
        let ones: u32 = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum();
        (ones & 1) as u8
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(129));
    }

    #[test]
    fn set_get_round_trip_across_word_boundaries() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i), "bit {i}");
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    fn hamming_is_a_metric_on_samples() {
        let a = BitVec::from_bits([true, false, true, true, false]);
        let b = BitVec::from_bits([true, true, true, false, false]);
        let c = BitVec::from_bits([false, true, false, false, true]);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn dot_mod2_matches_definition() {
        let a = BitVec::from_bits([true, true, false, true]);
        let b = BitVec::from_bits([true, false, true, true]);
        // overlap at positions 0 and 3 → parity 0.
        assert_eq!(a.dot_mod2(&b), 0);
        let c = BitVec::from_bits([true, false, false, false]);
        assert_eq!(a.dot_mod2(&c), 1);
    }

    #[test]
    fn display_renders_bits() {
        let v = BitVec::from_bits([true, true, true, false, false]);
        assert_eq!(v.to_string(), "11100");
    }

    #[test]
    fn from_bits_matches_per_bit_set_across_word_boundaries() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 130] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let fast = BitVec::from_bits(bits.iter().copied());
            let mut slow = BitVec::zeros(len);
            for (i, &b) in bits.iter().enumerate() {
                slow.set(i, b);
            }
            assert_eq!(fast, slow, "len {len}");
            assert_eq!(fast.len(), len);
        }
    }

    #[test]
    fn set_ones_spans_words() {
        for (start, count) in [
            (0usize, 0usize),
            (0, 1),
            (3, 61),
            (3, 62),
            (60, 8),
            (0, 130),
        ] {
            let mut fast = BitVec::zeros(130);
            fast.set_ones(start, count);
            let mut slow = BitVec::zeros(130);
            for i in start..start + count {
                slow.set(i, true);
            }
            assert_eq!(fast, slow, "start {start} count {count}");
        }
        let mut exact = BitVec::zeros(64);
        exact.set_ones(0, 64);
        assert_eq!(exact.count_ones(), 64);
    }

    #[test]
    fn reset_reuses_capacity_and_zeroes() {
        let mut v = BitVec::from_bits((0..130).map(|_| true));
        let ptr = v.words().as_ptr();
        v.reset(130);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.len(), 130);
        assert_eq!(v.words().as_ptr(), ptr, "reset must reuse the allocation");
        v.reset(64);
        assert_eq!(v.len(), 64);
        assert_eq!(v.words().len(), 1);
    }

    #[test]
    fn word_helpers_match_bit_level_ops() {
        let a = BitVec::from_bits((0..150).map(|i| i % 3 == 0));
        let b = BitVec::from_bits((0..150).map(|i| i % 5 == 0));
        assert_eq!(BitVec::hamming_words(a.words(), b.words()), a.hamming(&b));
        assert_eq!(BitVec::dot_mod2_words(a.words(), b.words()), a.dot_mod2(&b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_ones_out_of_range_panics() {
        BitVec::zeros(16).set_ones(10, 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_length_mismatch_panics() {
        let _ = BitVec::zeros(4).hamming(&BitVec::zeros(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitVec::zeros(4).get(4);
    }
}
