use std::fmt;

use serde::{Deserialize, Serialize};

/// A fixed-length bit vector over `{0,1}^d`, packed into 64-bit words.
///
/// Supports the three primitives the KOR algorithms need: bit access,
/// Hamming distance (XOR + popcount) and inner product mod 2 (AND +
/// popcount parity).
///
/// # Examples
///
/// ```
/// use infilter_nns::BitVec;
///
/// let mut a = BitVec::zeros(10);
/// a.set(3, true);
/// a.set(7, true);
/// let mut b = BitVec::zeros(10);
/// b.set(3, true);
/// assert_eq!(a.hamming(&b), 1);
/// assert_eq!(a.dot_mod2(&b), 1);
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> BitVec {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a vector from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> BitVec {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// The vector length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &BitVec) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch in hamming distance");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Inner product modulo 2 (the KOR `Test` procedure).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot_mod2(&self, other: &BitVec) -> u8 {
        assert_eq!(self.len, other.len, "length mismatch in inner product");
        let ones: u32 = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum();
        (ones & 1) as u8
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(129));
    }

    #[test]
    fn set_get_round_trip_across_word_boundaries() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i), "bit {i}");
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    fn hamming_is_a_metric_on_samples() {
        let a = BitVec::from_bits([true, false, true, true, false]);
        let b = BitVec::from_bits([true, true, true, false, false]);
        let c = BitVec::from_bits([false, true, false, false, true]);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn dot_mod2_matches_definition() {
        let a = BitVec::from_bits([true, true, false, true]);
        let b = BitVec::from_bits([true, false, true, true]);
        // overlap at positions 0 and 3 → parity 0.
        assert_eq!(a.dot_mod2(&b), 0);
        let c = BitVec::from_bits([true, false, false, false]);
        assert_eq!(a.dot_mod2(&c), 1);
    }

    #[test]
    fn display_renders_bits() {
        let v = BitVec::from_bits([true, true, true, false, false]);
        assert_eq!(v.to_string(), "11100");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_length_mismatch_panics() {
        let _ = BitVec::zeros(4).hamming(&BitVec::zeros(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitVec::zeros(4).get(4);
    }
}
