use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::BitVec;

/// Parameters of the KOR structure (paper Figure 6; defaults from §4.2:
/// `d = 720`, `M1 = 1`, `M2 = 12`, `M3 = 3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NnsParams {
    /// Point dimension; also the number of distance-scale substructures.
    pub d: usize,
    /// Tables per substructure.
    pub m1: usize,
    /// Test vectors per table (table size is `2^m2`).
    pub m2: usize,
    /// Trace-ball radius used at build time (points enter every index
    /// within Hamming distance `< m3` of their trace).
    pub m3: usize,
}

impl Default for NnsParams {
    fn default() -> NnsParams {
        NnsParams {
            d: 720,
            m1: 1,
            m2: 12,
            m3: 3,
        }
    }
}

/// The outcome of a search: which training point was found and its exact
/// Hamming distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NnResult {
    /// Index of the found point in the training slice passed to
    /// [`NnsStructure::build`].
    pub index: usize,
    /// Exact Hamming distance between the query and that point.
    pub distance: u32,
}

/// Errors from [`NnsStructure::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// A training point's length disagreed with `params.d`.
    DimensionMismatch {
        /// Index of the offending point.
        index: usize,
        /// Its length.
        got: usize,
        /// The expected dimension.
        expected: usize,
    },
    /// `m2` exceeds the 24-bit table-size cap or a parameter was zero.
    BadParams(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyTrainingSet => write!(f, "training set is empty"),
            BuildError::DimensionMismatch {
                index,
                got,
                expected,
            } => write!(f, "point {index} has dimension {got}, expected {expected}"),
            BuildError::BadParams(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// One table `T_ij`: `M2` test vectors plus a `2^M2`-entry table holding a
/// training-point index per entry (`u32::MAX` = empty). Where several
/// points' trace balls overlap an entry, the point whose trace is closest
/// to the entry index wins (`entry_dist` tracks the current winner's trace
/// distance); the original algorithm stores all of them and returns an
/// arbitrary one, so keeping the best-anchored point is a faithful,
/// memory-bounded refinement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Table {
    test_vectors: Vec<BitVec>,
    entries: Vec<u32>,
    entry_dist: Vec<u8>,
}

const EMPTY: u32 = u32::MAX;

impl Table {
    fn trace(&self, point: &BitVec) -> usize {
        let mut z = 0usize;
        for (k, u) in self.test_vectors.iter().enumerate() {
            if u.dot_mod2(point) == 1 {
                z |= 1 << k;
            }
        }
        z
    }
}

/// The KOR search structure over a cluster of training points.
///
/// Build cost is `O(n · d · M1 · (M2·d/64 + ball(M2, M3)))`; search cost is
/// `O(log d · M1 · M2 · d/64)` — "at most quadratic in the dimension" as the
/// paper puts it. Memory is `O(d · M1 · 2^M2)` entries, polynomial in the
/// training-set size as guaranteed by [KOR].
///
/// # Examples
///
/// ```
/// use infilter_nns::{BitVec, NnsParams, NnsStructure};
///
/// let train = vec![
///     BitVec::from_bits((0..32).map(|i| i < 4)),   // 4 leading ones
///     BitVec::from_bits((0..32).map(|i| i < 28)),  // 28 leading ones
/// ];
/// let params = NnsParams { d: 32, m1: 2, m2: 8, m3: 2 };
/// let s = NnsStructure::build(&train, params, 1).unwrap();
/// let q = BitVec::from_bits((0..32).map(|i| i < 5));
/// assert_eq!(s.search(&q).unwrap().index, 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NnsStructure {
    params: NnsParams,
    /// `substructures[t-1][j]` is table `T_tj` at distance scale `t`.
    substructures: Vec<Vec<Table>>,
    points: Vec<BitVec>,
    seed: u64,
}

impl NnsStructure {
    /// Builds the structure over `points` (Figure 6).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for an empty training set, inconsistent
    /// dimensions, or unusable parameters.
    pub fn build(
        points: &[BitVec],
        params: NnsParams,
        seed: u64,
    ) -> Result<NnsStructure, BuildError> {
        if points.is_empty() {
            return Err(BuildError::EmptyTrainingSet);
        }
        if params.d == 0 || params.m1 == 0 || params.m2 == 0 {
            return Err(BuildError::BadParams("d, m1, m2 must be positive".into()));
        }
        if params.m2 > 24 {
            return Err(BuildError::BadParams(format!(
                "m2 = {} would allocate 2^{} table entries",
                params.m2, params.m2
            )));
        }
        if params.m3 > params.m2 {
            return Err(BuildError::BadParams(format!(
                "m3 = {} exceeds m2 = {}",
                params.m3, params.m2
            )));
        }
        for (index, p) in points.iter().enumerate() {
            if p.len() != params.d {
                return Err(BuildError::DimensionMismatch {
                    index,
                    got: p.len(),
                    expected: params.d,
                });
            }
        }

        let ball = ball_masks(params.m2, params.m3);
        let mut substructures = Vec::with_capacity(params.d);
        for t in 1..=params.d {
            let mut tables = Vec::with_capacity(params.m1);
            for j in 0..params.m1 {
                let mut rng = StdRng::seed_from_u64(mix(seed, &(t, j)));
                // CreateTestVector with b = 1/(2t): each bit set w.p. b/2.
                let b = 1.0 / (2.0 * t as f64);
                let p_one = (b / 2.0).min(0.5);
                let test_vectors: Vec<BitVec> = (0..params.m2)
                    .map(|_| BitVec::from_bits((0..params.d).map(|_| rng.gen_bool(p_one))))
                    .collect();
                let mut table = Table {
                    test_vectors,
                    entries: vec![EMPTY; 1 << params.m2],
                    entry_dist: vec![u8::MAX; 1 << params.m2],
                };
                for (idx, p) in points.iter().enumerate() {
                    let z = table.trace(p);
                    for &mask in &ball {
                        let dist = mask.count_ones() as u8;
                        let slot = z ^ mask;
                        if dist < table.entry_dist[slot] {
                            table.entry_dist[slot] = dist;
                            table.entries[slot] = idx as u32;
                        }
                    }
                }
                tables.push(table);
            }
            substructures.push(tables);
        }
        Ok(NnsStructure {
            params,
            substructures,
            points: points.to_vec(),
            seed,
        })
    }

    /// The build parameters.
    pub fn params(&self) -> NnsParams {
        self.params
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the structure holds no points (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The training point at `index`.
    pub fn point(&self, index: usize) -> &BitVec {
        &self.points[index]
    }

    /// Approximate nearest-neighbour search (Figure 8): binary search over
    /// distance scales; at scale `t` the tables of `S_t` are probed at the
    /// query's trace; a non-empty entry steers the search to smaller scales.
    /// Among every candidate the probes surface, the one with the smallest
    /// *exact* Hamming distance to the query is returned (the original
    /// algorithm returns the flow of the last non-empty entry; verifying
    /// candidates exactly is cheap and strictly improves accuracy). Returns
    /// `None` if every probe missed.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from `params.d`.
    pub fn search(&self, query: &BitVec) -> Option<NnResult> {
        assert_eq!(query.len(), self.params.d, "query dimension mismatch");
        let mut lo = 1usize;
        let mut hi = self.params.d;
        let mut best: Option<NnResult> = None;
        while lo <= hi {
            let t = lo + (hi - lo) / 2;
            let mut hit = false;
            for table in &self.substructures[t - 1] {
                let z = table.trace(query);
                let entry = table.entries[z];
                if entry != EMPTY {
                    hit = true;
                    let index = entry as usize;
                    let distance = self.points[index].hamming(query);
                    if best.is_none_or(|b| (distance, index) < (b.distance, b.index)) {
                        best = Some(NnResult { index, distance });
                    }
                }
            }
            if hit {
                if t == 1 {
                    break;
                }
                hi = t - 1;
            } else {
                lo = t + 1;
            }
        }
        best
    }
}

/// Exact linear-scan nearest neighbour, used as the oracle in tests and for
/// threshold calibration. Ties break on the lower index.
pub fn linear_nn(points: &[BitVec], query: &BitVec) -> Option<NnResult> {
    points
        .iter()
        .enumerate()
        .map(|(index, p)| NnResult {
            index,
            distance: p.hamming(query),
        })
        .min_by_key(|r| (r.distance, r.index))
}

/// All `m2`-bit masks with popcount `< m3` (the trace ball).
fn ball_masks(m2: usize, m3: usize) -> Vec<usize> {
    (0..(1usize << m2))
        .filter(|z| (z.count_ones() as usize) < m3.max(1))
        .collect()
}

fn mix<T: Hash>(seed: u64, value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unary_point(d: usize, ones: usize) -> BitVec {
        BitVec::from_bits((0..d).map(|i| i < ones))
    }

    #[test]
    fn ball_masks_match_binomial_sums() {
        // m2=12, m3=3: C(12,0)+C(12,1)+C(12,2) = 79 — the paper's setting.
        assert_eq!(ball_masks(12, 3).len(), 79);
        assert_eq!(ball_masks(6, 1).len(), 1);
        assert_eq!(ball_masks(6, 2).len(), 7);
    }

    #[test]
    fn build_rejects_bad_input() {
        let params = NnsParams {
            d: 16,
            m1: 1,
            m2: 6,
            m3: 2,
        };
        assert_eq!(
            NnsStructure::build(&[], params, 0).unwrap_err(),
            BuildError::EmptyTrainingSet
        );
        let wrong = vec![unary_point(8, 2)];
        assert!(matches!(
            NnsStructure::build(&wrong, params, 0).unwrap_err(),
            BuildError::DimensionMismatch {
                index: 0,
                got: 8,
                expected: 16
            }
        ));
        let p = vec![unary_point(16, 2)];
        assert!(matches!(
            NnsStructure::build(&p, NnsParams { m2: 30, ..params }, 0).unwrap_err(),
            BuildError::BadParams(_)
        ));
        assert!(matches!(
            NnsStructure::build(&p, NnsParams { m3: 7, ..params }, 0).unwrap_err(),
            BuildError::BadParams(_)
        ));
        assert!(matches!(
            NnsStructure::build(&p, NnsParams { m1: 0, ..params }, 0).unwrap_err(),
            BuildError::BadParams(_)
        ));
    }

    #[test]
    fn query_equal_to_training_point_finds_it_at_distance_zero() {
        let d = 48;
        let points: Vec<BitVec> = (0..6).map(|i| unary_point(d, i * 8)).collect();
        let params = NnsParams {
            d,
            m1: 3,
            m2: 8,
            m3: 2,
        };
        let s = NnsStructure::build(&points, params, 11).unwrap();
        for (i, p) in points.iter().enumerate() {
            let r = s.search(p).expect("training point must be found");
            assert_eq!(r.distance, points[r.index].hamming(p));
            assert_eq!(
                r.index, i,
                "expected exact hit for training point {i}, got {r:?}"
            );
        }
    }

    #[test]
    fn near_query_finds_the_near_cluster() {
        // Two well-separated unary clusters; queries near one must not
        // resolve to the other.
        let d = 64;
        let mut points = Vec::new();
        for ones in [2usize, 3, 4] {
            points.push(unary_point(d, ones));
        }
        for ones in [58usize, 59, 60] {
            points.push(unary_point(d, ones));
        }
        let params = NnsParams {
            d,
            m1: 4,
            m2: 10,
            m3: 3,
        };
        let s = NnsStructure::build(&points, params, 3).unwrap();
        let near_low = unary_point(d, 5);
        let r = s.search(&near_low).expect("hit");
        assert!(r.index < 3, "query near low cluster resolved to {r:?}");
        let near_high = unary_point(d, 57);
        let r = s.search(&near_high).expect("hit");
        assert!(r.index >= 3, "query near high cluster resolved to {r:?}");
    }

    #[test]
    fn approximation_quality_vs_linear_oracle() {
        // On random unary data the returned distance should rarely exceed a
        // small multiple of the true NN distance.
        let d = 96;
        let mut rng = StdRng::seed_from_u64(9);
        let points: Vec<BitVec> = (0..40)
            .map(|_| unary_point(d, rng.gen_range(0..=d)))
            .collect();
        let params = NnsParams {
            d,
            m1: 4,
            m2: 10,
            m3: 3,
        };
        let s = NnsStructure::build(&points, params, 5).unwrap();
        let mut found = 0;
        let mut acceptable = 0;
        for _ in 0..60 {
            let q = unary_point(d, rng.gen_range(0..=d));
            let exact = linear_nn(&points, &q).unwrap();
            if let Some(approx) = s.search(&q) {
                found += 1;
                // 3x approximation with slack for tiny exact distances.
                if approx.distance <= exact.distance * 3 + 6 {
                    acceptable += 1;
                }
            }
        }
        assert!(found >= 55, "search missed too often: {found}/60");
        assert!(
            acceptable * 10 >= found * 9,
            "approximation too loose: {acceptable}/{found}"
        );
    }

    #[test]
    fn search_is_deterministic() {
        let d = 48;
        let points: Vec<BitVec> = (0..8).map(|i| unary_point(d, i * 6)).collect();
        let params = NnsParams {
            d,
            m1: 3,
            m2: 8,
            m3: 2,
        };
        let s = NnsStructure::build(&points, params, 2).unwrap();
        let q = unary_point(d, 13);
        assert_eq!(s.search(&q), s.search(&q));
    }

    #[test]
    fn linear_nn_breaks_ties_on_lower_index() {
        let points = vec![unary_point(8, 2), unary_point(8, 4), unary_point(8, 2)];
        let q = unary_point(8, 3);
        let r = linear_nn(&points, &q).unwrap();
        assert_eq!(r.distance, 1);
        assert_eq!(r.index, 0);
        assert!(linear_nn(&[], &q).is_none());
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn search_wrong_dimension_panics() {
        let points = vec![unary_point(16, 4)];
        let s = NnsStructure::build(
            &points,
            NnsParams {
                d: 16,
                m1: 1,
                m2: 6,
                m3: 2,
            },
            0,
        )
        .unwrap();
        s.search(&unary_point(8, 2));
    }
}
