use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::BitVec;

/// Parameters of the KOR structure (paper Figure 6; defaults from §4.2:
/// `d = 720`, `M1 = 1`, `M2 = 12`, `M3 = 3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NnsParams {
    /// Point dimension; also the number of distance-scale substructures.
    pub d: usize,
    /// Tables per substructure.
    pub m1: usize,
    /// Test vectors per table (table size is `2^m2`).
    pub m2: usize,
    /// Trace-ball radius used at build time (points enter every index
    /// within Hamming distance `< m3` of their trace).
    pub m3: usize,
}

impl Default for NnsParams {
    fn default() -> NnsParams {
        NnsParams {
            d: 720,
            m1: 1,
            m2: 12,
            m3: 3,
        }
    }
}

/// The outcome of a search: which training point was found and its exact
/// Hamming distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NnResult {
    /// Index of the found point in the training slice passed to
    /// [`NnsStructure::build`].
    pub index: usize,
    /// Exact Hamming distance between the query and that point.
    pub distance: u32,
}

/// Errors from [`NnsStructure::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// A training point's length disagreed with `params.d`.
    DimensionMismatch {
        /// Index of the offending point.
        index: usize,
        /// Its length.
        got: usize,
        /// The expected dimension.
        expected: usize,
    },
    /// `m2` exceeds the 24-bit table-size cap or a parameter was zero.
    BadParams(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyTrainingSet => write!(f, "training set is empty"),
            BuildError::DimensionMismatch {
                index,
                got,
                expected,
            } => write!(f, "point {index} has dimension {got}, expected {expected}"),
            BuildError::BadParams(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

pub(crate) const EMPTY: u32 = u32::MAX;

/// The KOR search structure over a cluster of training points, stored as
/// flat contiguous word arenas.
///
/// All `d × M1 × M2` test vectors live in one `Vec<u64>` matrix with a
/// fixed word stride per row, all `d × M1` tables' entries in one
/// `Vec<u32>`, and all training points in one flat point arena — so
/// `search` walks sequential memory instead of chasing one heap pointer
/// per test vector, and a query performs zero heap allocations. The
/// build-only trace-distance scratch is not stored (or serialized): where
/// several points' trace balls overlap an entry, the point whose trace is
/// closest to the entry index wins; the original algorithm stores all of
/// them and returns an arbitrary one, so keeping the best-anchored point
/// is a faithful, memory-bounded refinement.
///
/// Build cost is `O(n · d · M1 · (M2·d/64 + ball(M2, M3)))`, parallelized
/// over the `d` distance scales; search cost is
/// `O(log d · M1 · M2 · d/64)` — "at most quadratic in the dimension" as
/// the paper puts it. Memory is `O(d · M1 · 2^M2)` entries, polynomial in
/// the training-set size as guaranteed by [KOR].
///
/// # Examples
///
/// ```
/// use infilter_nns::{BitVec, NnsParams, NnsStructure};
///
/// let train = vec![
///     BitVec::from_bits((0..32).map(|i| i < 4)),   // 4 leading ones
///     BitVec::from_bits((0..32).map(|i| i < 28)),  // 28 leading ones
/// ];
/// let params = NnsParams { d: 32, m1: 2, m2: 8, m3: 2 };
/// let s = NnsStructure::build(&train, params, 1).unwrap();
/// let q = BitVec::from_bits((0..32).map(|i| i < 5));
/// assert_eq!(s.search(&q).unwrap().index, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NnsStructure {
    params: NnsParams,
    seed: u64,
    /// Number of training points in the arena.
    n_points: usize,
    /// Test-vector matrix: row `((t-1)·m1 + j)·m2 + k` (stride
    /// `d.div_ceil(64)` words) is test vector `k` of table `T_tj`.
    test_vectors: Vec<u64>,
    /// Table entries: index `((t-1)·m1 + j)·2^m2 + z` holds the training
    /// point entered at trace index `z` of table `T_tj` (`u32::MAX` =
    /// empty).
    entries: Vec<u32>,
    /// Flat point arena: point `i` occupies words
    /// `i·stride..(i+1)·stride`.
    point_words: Vec<u64>,
}

/// Trace of `point` in a table (the `M2`-bit string of inner products mod
/// 2 with the table's test vectors). `tests` is the table's slice of the
/// test-vector matrix: `m2` rows of `row_words` words each.
#[inline]
fn trace(tests: &[u64], row_words: usize, m2: usize, point: &[u64]) -> usize {
    let mut z = 0usize;
    for (k, row) in tests.chunks_exact(row_words).take(m2).enumerate() {
        z |= (BitVec::dot_mod2_words(row, point) as usize) << k;
    }
    z
}

pub(crate) fn validate(points: &[BitVec], params: NnsParams) -> Result<(), BuildError> {
    if points.is_empty() {
        return Err(BuildError::EmptyTrainingSet);
    }
    if params.d == 0 || params.m1 == 0 || params.m2 == 0 {
        return Err(BuildError::BadParams("d, m1, m2 must be positive".into()));
    }
    if params.m2 > 24 {
        return Err(BuildError::BadParams(format!(
            "m2 = {} would allocate 2^{} table entries",
            params.m2, params.m2
        )));
    }
    if params.m3 > params.m2 {
        return Err(BuildError::BadParams(format!(
            "m3 = {} exceeds m2 = {}",
            params.m3, params.m2
        )));
    }
    for (index, p) in points.iter().enumerate() {
        if p.len() != params.d {
            return Err(BuildError::DimensionMismatch {
                index,
                got: p.len(),
                expected: params.d,
            });
        }
    }
    Ok(())
}

impl NnsStructure {
    /// Builds the structure over `points` (Figure 6), parallelizing across
    /// the `d` distance scales with one thread per available core.
    ///
    /// Each table `T_tj` derives its own RNG from `mix(seed, &(t, j))` and
    /// writes to a disjoint region of the arenas, so the result is
    /// bit-identical for every thread count (see
    /// [`NnsStructure::build_with_threads`]).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for an empty training set, inconsistent
    /// dimensions, or unusable parameters.
    pub fn build(
        points: &[BitVec],
        params: NnsParams,
        seed: u64,
    ) -> Result<NnsStructure, BuildError> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::build_with_threads(points, params, seed, threads)
    }

    /// [`NnsStructure::build`] with an explicit thread count (`0` and `1`
    /// both build serially on the calling thread). Output is bit-identical
    /// across thread counts.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for an empty training set, inconsistent
    /// dimensions, or unusable parameters.
    pub fn build_with_threads(
        points: &[BitVec],
        params: NnsParams,
        seed: u64,
        threads: usize,
    ) -> Result<NnsStructure, BuildError> {
        validate(points, params)?;

        let stride = params.d.div_ceil(64);
        let mut point_words = vec![0u64; points.len() * stride];
        for (arena_row, p) in point_words.chunks_exact_mut(stride).zip(points) {
            arena_row.copy_from_slice(p.words());
        }

        let ball = ball_masks(params.m2, params.m3);
        let table_size = 1usize << params.m2;
        // Words of test vectors / table entries per distance scale.
        let scale_tv = params.m1 * params.m2 * stride;
        let scale_en = params.m1 * table_size;
        let mut test_vectors = vec![0u64; params.d * scale_tv];
        let mut entries = vec![EMPTY; params.d * scale_en];

        let threads = threads.clamp(1, params.d);
        if threads == 1 {
            build_scales(
                1,
                &mut test_vectors,
                &mut entries,
                params,
                seed,
                &point_words,
                &ball,
            );
        } else {
            // Split the scales into `threads` contiguous chunks; each chunk
            // owns a disjoint slice of both arenas, and every (t, j) table
            // is computed exactly as in the serial build.
            let chunk = params.d.div_ceil(threads);
            std::thread::scope(|scope| {
                for (c, (tv_chunk, en_chunk)) in test_vectors
                    .chunks_mut(chunk * scale_tv)
                    .zip(entries.chunks_mut(chunk * scale_en))
                    .enumerate()
                {
                    let (point_words, ball) = (&point_words, &ball);
                    scope.spawn(move || {
                        build_scales(
                            c * chunk + 1,
                            tv_chunk,
                            en_chunk,
                            params,
                            seed,
                            point_words,
                            ball,
                        );
                    });
                }
            });
        }

        Ok(NnsStructure {
            params,
            seed,
            n_points: points.len(),
            test_vectors,
            entries,
            point_words,
        })
    }

    /// The build parameters.
    pub fn params(&self) -> NnsParams {
        self.params
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// Whether the structure holds no points (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// The training point at `index` as its packed words (stride
    /// `d.div_ceil(64)`, trailing bits zero).
    pub fn point_words(&self, index: usize) -> &[u64] {
        let stride = self.params.d.div_ceil(64);
        &self.point_words[index * stride..(index + 1) * stride]
    }

    /// The whole test-vector matrix (rows in scale-major `(t, j, k)` order,
    /// stride `d.div_ceil(64)` words) — exposed for parity tests.
    #[doc(hidden)]
    pub fn test_vector_words(&self) -> &[u64] {
        &self.test_vectors
    }

    /// All table entries in scale-major `(t, j)` order, `2^m2` slots per
    /// table — exposed for parity tests.
    #[doc(hidden)]
    pub fn entry_slots(&self) -> &[u32] {
        &self.entries
    }

    /// Approximate nearest-neighbour search (Figure 8): binary search over
    /// distance scales; at scale `t` the tables of `S_t` are probed at the
    /// query's trace; a non-empty entry steers the search to smaller scales.
    /// Among every candidate the probes surface, the one with the smallest
    /// *exact* Hamming distance to the query is returned (the original
    /// algorithm returns the flow of the last non-empty entry; verifying
    /// candidates exactly is cheap and strictly improves accuracy). Returns
    /// `None` if every probe missed.
    ///
    /// Performs zero heap allocations: the trace and the exact-distance
    /// verification walk the contiguous arenas directly.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from `params.d`.
    pub fn search(&self, query: &BitVec) -> Option<NnResult> {
        self.search_observed(query, &mut SearchStats::default())
    }

    /// [`NnsStructure::search`] with work accounting: increments `stats`
    /// with the scales visited, tables probed, and candidates verified, so
    /// callers can histogram how hard each lookup worked. Same result,
    /// same zero-allocation guarantee; the counters are a few register
    /// increments against hundreds of table probes.
    pub fn search_observed(&self, query: &BitVec, stats: &mut SearchStats) -> Option<NnResult> {
        assert_eq!(query.len(), self.params.d, "query dimension mismatch");
        let qw = query.words();
        let stride = self.params.d.div_ceil(64);
        let tv_per_table = self.params.m2 * stride;
        let table_size = 1usize << self.params.m2;
        let mut lo = 1usize;
        let mut hi = self.params.d;
        let mut best: Option<NnResult> = None;
        while lo <= hi {
            let t = lo + (hi - lo) / 2;
            stats.scales_probed += 1;
            let mut hit = false;
            for j in 0..self.params.m1 {
                let table = (t - 1) * self.params.m1 + j;
                let tests = &self.test_vectors[table * tv_per_table..][..tv_per_table];
                let z = trace(tests, stride, self.params.m2, qw);
                stats.tables_probed += 1;
                let entry = self.entries[table * table_size + z];
                if entry != EMPTY {
                    hit = true;
                    stats.candidates_verified += 1;
                    let index = entry as usize;
                    let point = &self.point_words[index * stride..][..stride];
                    let distance = BitVec::hamming_words(point, qw);
                    if best.is_none_or(|b| (distance, index) < (b.distance, b.index)) {
                        best = Some(NnResult { index, distance });
                    }
                }
            }
            if hit {
                if t == 1 {
                    break;
                }
                hi = t - 1;
            } else {
                lo = t + 1;
            }
        }
        best
    }
}

/// Work counters accumulated by [`NnsStructure::search_observed`] — the
/// observation hook the pipeline's telemetry histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distance scales the binary search visited.
    pub scales_probed: u32,
    /// Hash tables probed (`scales_probed × m1`).
    pub tables_probed: u32,
    /// Non-empty entries whose exact Hamming distance was computed.
    pub candidates_verified: u32,
}

/// Builds the tables for the contiguous run of distance scales starting at
/// `first_t` whose arena slices are `tests_out` / `entries_out`. Exactly
/// the serial per-table algorithm — thread counts change only how scales
/// are grouped, never what a table contains.
fn build_scales(
    first_t: usize,
    tests_out: &mut [u64],
    entries_out: &mut [u32],
    params: NnsParams,
    seed: u64,
    point_words: &[u64],
    ball: &[usize],
) {
    let stride = params.d.div_ceil(64);
    let table_size = 1usize << params.m2;
    let tv_per_table = params.m2 * stride;
    let n_scales = entries_out.len() / (params.m1 * table_size);
    // Build-time scratch: the trace distance of each entry's current
    // winner. Reused across this chunk's tables, never stored.
    let mut entry_dist = vec![u8::MAX; table_size];
    for s in 0..n_scales {
        let t = first_t + s;
        for j in 0..params.m1 {
            let table = s * params.m1 + j;
            let mut rng = StdRng::seed_from_u64(mix(seed, &(t, j)));
            // CreateTestVector with b = 1/(2t): each bit set w.p. b/2.
            let b = 1.0 / (2.0 * t as f64);
            let p_one = (b / 2.0).min(0.5);
            let tests = &mut tests_out[table * tv_per_table..][..tv_per_table];
            for k in 0..params.m2 {
                let row = &mut tests[k * stride..(k + 1) * stride];
                for bit in 0..params.d {
                    if rng.gen_bool(p_one) {
                        row[bit / 64] |= 1u64 << (bit % 64);
                    }
                }
            }
            let tests = &tests_out[table * tv_per_table..][..tv_per_table];
            let table_entries = &mut entries_out[table * table_size..][..table_size];
            entry_dist.fill(u8::MAX);
            for (idx, point) in point_words.chunks_exact(stride).enumerate() {
                let z = trace(tests, stride, params.m2, point);
                for &mask in ball {
                    let dist = mask.count_ones() as u8;
                    let slot = z ^ mask;
                    if dist < entry_dist[slot] {
                        entry_dist[slot] = dist;
                        table_entries[slot] = idx as u32;
                    }
                }
            }
        }
    }
}

/// Exact linear-scan nearest neighbour, used as the oracle in tests and for
/// threshold calibration. Ties break on the lower index.
pub fn linear_nn(points: &[BitVec], query: &BitVec) -> Option<NnResult> {
    points
        .iter()
        .enumerate()
        .map(|(index, p)| NnResult {
            index,
            distance: p.hamming(query),
        })
        .min_by_key(|r| (r.distance, r.index))
}

/// All `m2`-bit masks with popcount `< max(m3, 1)` (the trace ball),
/// enumerated directly by popcount class via Gosper's hack — `O(|ball|)`
/// instead of the `O(2^m2)` generate-and-filter scan.
///
/// The order differs from the filtered enumeration (grouped by popcount
/// instead of ascending), but build output is unaffected: for a fixed
/// point trace `z` each table slot is reached by exactly one mask
/// (`mask = z ^ slot`), and across popcount classes the strictly-smaller
/// distance always wins.
pub(crate) fn ball_masks(m2: usize, m3: usize) -> Vec<usize> {
    let limit = 1usize << m2;
    let mut masks = vec![0usize];
    for k in 1..m3.max(1).min(m2 + 1) {
        // Gosper's hack: step through all m2-bit masks of popcount k in
        // ascending order, starting from the k lowest bits.
        let mut v = (1usize << k) - 1;
        while v < limit {
            masks.push(v);
            let c = v & v.wrapping_neg();
            let r = v + c;
            v = (((r ^ v) >> 2) / c) | r;
        }
    }
    masks
}

pub(crate) fn mix<T: Hash>(seed: u64, value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unary_point(d: usize, ones: usize) -> BitVec {
        BitVec::from_bits((0..d).map(|i| i < ones))
    }

    #[test]
    fn ball_masks_match_binomial_sums() {
        // m2=12, m3=3: C(12,0)+C(12,1)+C(12,2) = 79 — the paper's setting.
        assert_eq!(ball_masks(12, 3).len(), 79);
        assert_eq!(ball_masks(6, 1).len(), 1);
        assert_eq!(ball_masks(6, 2).len(), 7);
    }

    #[test]
    fn ball_masks_match_generate_and_filter() {
        // The Gosper enumeration must produce exactly the reference
        // generate-and-filter set, including at the paper's (12, 3) and the
        // popcount = m2 edge.
        for (m2, m3) in [(12usize, 3usize), (6, 1), (6, 2), (4, 4), (3, 3), (1, 1)] {
            let mut direct = ball_masks(m2, m3);
            direct.sort_unstable();
            let filtered: Vec<usize> = (0..(1usize << m2))
                .filter(|z| (z.count_ones() as usize) < m3.max(1))
                .collect();
            assert_eq!(direct, filtered, "m2={m2} m3={m3}");
        }
    }

    #[test]
    fn build_rejects_bad_input() {
        let params = NnsParams {
            d: 16,
            m1: 1,
            m2: 6,
            m3: 2,
        };
        assert_eq!(
            NnsStructure::build(&[], params, 0).unwrap_err(),
            BuildError::EmptyTrainingSet
        );
        let wrong = vec![unary_point(8, 2)];
        assert!(matches!(
            NnsStructure::build(&wrong, params, 0).unwrap_err(),
            BuildError::DimensionMismatch {
                index: 0,
                got: 8,
                expected: 16
            }
        ));
        let p = vec![unary_point(16, 2)];
        assert!(matches!(
            NnsStructure::build(&p, NnsParams { m2: 30, ..params }, 0).unwrap_err(),
            BuildError::BadParams(_)
        ));
        assert!(matches!(
            NnsStructure::build(&p, NnsParams { m3: 7, ..params }, 0).unwrap_err(),
            BuildError::BadParams(_)
        ));
        assert!(matches!(
            NnsStructure::build(&p, NnsParams { m1: 0, ..params }, 0).unwrap_err(),
            BuildError::BadParams(_)
        ));
    }

    #[test]
    fn query_equal_to_training_point_finds_it_at_distance_zero() {
        let d = 48;
        let points: Vec<BitVec> = (0..6).map(|i| unary_point(d, i * 8)).collect();
        let params = NnsParams {
            d,
            m1: 3,
            m2: 8,
            m3: 2,
        };
        let s = NnsStructure::build(&points, params, 11).unwrap();
        for (i, p) in points.iter().enumerate() {
            let r = s.search(p).expect("training point must be found");
            assert_eq!(r.distance, points[r.index].hamming(p));
            assert_eq!(
                r.index, i,
                "expected exact hit for training point {i}, got {r:?}"
            );
        }
    }

    #[test]
    fn near_query_finds_the_near_cluster() {
        // Two well-separated unary clusters; queries near one must not
        // resolve to the other.
        let d = 64;
        let mut points = Vec::new();
        for ones in [2usize, 3, 4] {
            points.push(unary_point(d, ones));
        }
        for ones in [58usize, 59, 60] {
            points.push(unary_point(d, ones));
        }
        let params = NnsParams {
            d,
            m1: 4,
            m2: 10,
            m3: 3,
        };
        let s = NnsStructure::build(&points, params, 3).unwrap();
        let near_low = unary_point(d, 5);
        let r = s.search(&near_low).expect("hit");
        assert!(r.index < 3, "query near low cluster resolved to {r:?}");
        let near_high = unary_point(d, 57);
        let r = s.search(&near_high).expect("hit");
        assert!(r.index >= 3, "query near high cluster resolved to {r:?}");
    }

    #[test]
    fn approximation_quality_vs_linear_oracle() {
        // On random unary data the returned distance should rarely exceed a
        // small multiple of the true NN distance.
        let d = 96;
        let mut rng = StdRng::seed_from_u64(9);
        let points: Vec<BitVec> = (0..40)
            .map(|_| unary_point(d, rng.gen_range(0..=d)))
            .collect();
        let params = NnsParams {
            d,
            m1: 4,
            m2: 10,
            m3: 3,
        };
        let s = NnsStructure::build(&points, params, 5).unwrap();
        let mut found = 0;
        let mut acceptable = 0;
        for _ in 0..60 {
            let q = unary_point(d, rng.gen_range(0..=d));
            let exact = linear_nn(&points, &q).unwrap();
            if let Some(approx) = s.search(&q) {
                found += 1;
                // 3x approximation with slack for tiny exact distances.
                if approx.distance <= exact.distance * 3 + 6 {
                    acceptable += 1;
                }
            }
        }
        assert!(found >= 55, "search missed too often: {found}/60");
        assert!(
            acceptable * 10 >= found * 9,
            "approximation too loose: {acceptable}/{found}"
        );
    }

    #[test]
    fn search_is_deterministic() {
        let d = 48;
        let points: Vec<BitVec> = (0..8).map(|i| unary_point(d, i * 6)).collect();
        let params = NnsParams {
            d,
            m1: 3,
            m2: 8,
            m3: 2,
        };
        let s = NnsStructure::build(&points, params, 2).unwrap();
        let q = unary_point(d, 13);
        assert_eq!(s.search(&q), s.search(&q));
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let d = 48;
        let points: Vec<BitVec> = (0..8).map(|i| unary_point(d, i * 6)).collect();
        let params = NnsParams {
            d,
            m1: 2,
            m2: 8,
            m3: 2,
        };
        let serial = NnsStructure::build_with_threads(&points, params, 7, 1).unwrap();
        for threads in [2usize, 3, 8, 64, 1000] {
            let parallel = NnsStructure::build_with_threads(&points, params, 7, threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn point_words_round_trip_the_training_points() {
        let d = 70;
        let points: Vec<BitVec> = (0..5).map(|i| unary_point(d, i * 13)).collect();
        let params = NnsParams {
            d,
            m1: 1,
            m2: 6,
            m3: 2,
        };
        let s = NnsStructure::build(&points, params, 4).unwrap();
        assert_eq!(s.len(), points.len());
        for (i, p) in points.iter().enumerate() {
            assert_eq!(s.point_words(i), p.words(), "point {i}");
        }
    }

    #[test]
    fn linear_nn_breaks_ties_on_lower_index() {
        let points = vec![unary_point(8, 2), unary_point(8, 4), unary_point(8, 2)];
        let q = unary_point(8, 3);
        let r = linear_nn(&points, &q).unwrap();
        assert_eq!(r.distance, 1);
        assert_eq!(r.index, 0);
        assert!(linear_nn(&[], &q).is_none());
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn search_wrong_dimension_panics() {
        let points = vec![unary_point(16, 4)];
        let s = NnsStructure::build(
            &points,
            NnsParams {
                d: 16,
                m1: 1,
                m2: 6,
                m3: 2,
            },
            0,
        )
        .unwrap();
        s.search(&unary_point(8, 2));
    }
}
