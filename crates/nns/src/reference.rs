//! The seed `Vec<BitVec>`-per-table KOR layout, kept verbatim as a
//! test-and-bench reference implementation.
//!
//! The production [`crate::NnsStructure`] stores the same tables in flat
//! contiguous word arenas; the parity proptests assert its `search` returns
//! bit-identical results to this layout for the same seed, and the
//! `nns_hotpath` bench measures the layout change in isolation. Not part of
//! the public API surface.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::structure::{mix, validate, EMPTY};
use crate::{BitVec, BuildError, NnResult, NnsParams};

/// One table `T_ij` in the seed layout: `M2` individually boxed test
/// vectors plus the `2^M2`-entry table, with the build-only `entry_dist`
/// scratch persisted alongside (the flat layout drops it).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Table {
    test_vectors: Vec<BitVec>,
    entries: Vec<u32>,
    entry_dist: Vec<u8>,
}

impl Table {
    fn trace(&self, point: &BitVec) -> usize {
        let mut z = 0usize;
        for (k, u) in self.test_vectors.iter().enumerate() {
            if u.dot_mod2(point) == 1 {
                z |= 1 << k;
            }
        }
        z
    }
}

/// The seed pointer-per-test-vector KOR structure (reference only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefNnsStructure {
    params: NnsParams,
    /// `substructures[t-1][j]` is table `T_tj` at distance scale `t`.
    substructures: Vec<Vec<Table>>,
    points: Vec<BitVec>,
    seed: u64,
}

impl RefNnsStructure {
    /// Serial seed-layout build — identical tables to
    /// [`crate::NnsStructure::build`] with the same `(points, params,
    /// seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for the same inputs the flat build rejects.
    pub fn build(
        points: &[BitVec],
        params: NnsParams,
        seed: u64,
    ) -> Result<RefNnsStructure, BuildError> {
        validate(points, params)?;
        let ball: Vec<usize> = (0..(1usize << params.m2))
            .filter(|z| (z.count_ones() as usize) < params.m3.max(1))
            .collect();
        let mut substructures = Vec::with_capacity(params.d);
        for t in 1..=params.d {
            let mut tables = Vec::with_capacity(params.m1);
            for j in 0..params.m1 {
                let mut rng = StdRng::seed_from_u64(mix(seed, &(t, j)));
                let b = 1.0 / (2.0 * t as f64);
                let p_one = (b / 2.0).min(0.5);
                let test_vectors: Vec<BitVec> = (0..params.m2)
                    .map(|_| BitVec::from_bits((0..params.d).map(|_| rng.gen_bool(p_one))))
                    .collect();
                let mut table = Table {
                    test_vectors,
                    entries: vec![EMPTY; 1 << params.m2],
                    entry_dist: vec![u8::MAX; 1 << params.m2],
                };
                for (idx, p) in points.iter().enumerate() {
                    let z = table.trace(p);
                    for &mask in &ball {
                        let dist = mask.count_ones() as u8;
                        let slot = z ^ mask;
                        if dist < table.entry_dist[slot] {
                            table.entry_dist[slot] = dist;
                            table.entries[slot] = idx as u32;
                        }
                    }
                }
                tables.push(table);
            }
            substructures.push(tables);
        }
        Ok(RefNnsStructure {
            params,
            substructures,
            points: points.to_vec(),
            seed,
        })
    }

    /// The seed this structure was built with (pairs with
    /// [`crate::NnsStructure::build`] for bit-identical comparisons).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Seed-layout search — same binary-search-over-scales algorithm as
    /// [`crate::NnsStructure::search`], pointer-chasing included.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from `params.d`.
    pub fn search(&self, query: &BitVec) -> Option<NnResult> {
        assert_eq!(query.len(), self.params.d, "query dimension mismatch");
        let mut lo = 1usize;
        let mut hi = self.params.d;
        let mut best: Option<NnResult> = None;
        while lo <= hi {
            let t = lo + (hi - lo) / 2;
            let mut hit = false;
            for table in &self.substructures[t - 1] {
                let z = table.trace(query);
                let entry = table.entries[z];
                if entry != EMPTY {
                    hit = true;
                    let index = entry as usize;
                    let distance = self.points[index].hamming(query);
                    if best.is_none_or(|b| (distance, index) < (b.distance, b.index)) {
                        best = Some(NnResult { index, distance });
                    }
                }
            }
            if hit {
                if t == 1 {
                    break;
                }
                hi = t - 1;
            } else {
                lo = t + 1;
            }
        }
        best
    }

    /// Tables of test vectors and entries flattened in scale-major order —
    /// lets tests compare seed-layout build output word for word against
    /// the flat arenas.
    pub fn flatten(&self) -> (Vec<u64>, Vec<u32>) {
        let stride = self.params.d.div_ceil(64);
        let mut test_vectors = Vec::new();
        let mut entries = Vec::new();
        for tables in &self.substructures {
            for table in tables {
                for tv in &table.test_vectors {
                    let mut row = tv.words().to_vec();
                    row.resize(stride, 0);
                    test_vectors.extend_from_slice(&row);
                }
                entries.extend_from_slice(&table.entries);
            }
        }
        (test_vectors, entries)
    }
}
