//! The Kushilevitz–Ostrovsky–Rabani (KOR) approximate nearest-neighbour
//! search used by Enhanced InFilter (paper §4.2, Figures 6–8).
//!
//! Flows are represented as points in the Hamming cube by **unary encoding**
//! each of their characteristics: a value falling in the `I`-th of `d_c`
//! equal intervals becomes `I` ones followed by `d_c − I` zeros, so the
//! Hamming distance between two encodings is the L1 distance in interval
//! space. The paper uses five flow characteristics × 144 bits = `d = 720`.
//!
//! The search structure holds one substructure per distance scale
//! `t = 1..=d`. A substructure contains `M1` tables; each table has `M2`
//! random *test vectors* (each bit set with probability `b/2`, `b = 1/(2t)`)
//! and `2^M2` entries. A point's **trace** in a table is the `M2`-bit string
//! of inner products (mod 2) with the test vectors; at build time the point
//! is entered at every index within Hamming distance `< M3` of its trace.
//! Search is a binary search over scales: a non-empty entry at scale `t`
//! means a training point is likely within distance ~`t`, so the search
//! continues among smaller scales. Paper parameters: `M1 = 1`, `M2 = 12`,
//! `M3 = 3`.
//!
//! # Examples
//!
//! ```
//! use infilter_nns::{FeatureSpec, NnsParams, NnsStructure, UnaryEncoder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let enc = UnaryEncoder::new(
//!     vec![FeatureSpec::new(0.0, 5.0), FeatureSpec::new(0.0, 10.0)],
//!     8,
//! )?;
//! let train: Vec<_> = [[1.0, 2.0], [4.0, 9.0]].iter().map(|f| enc.encode(f)).collect();
//! let params = NnsParams { d: enc.dimension(), m1: 1, m2: 6, m3: 2 };
//! let index = NnsStructure::build(&train, params, 7)?;
//! let hit = index.search(&enc.encode(&[1.2, 2.3])).unwrap();
//! assert_eq!(hit.index, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod encoding;
#[doc(hidden)]
pub mod reference;
mod structure;

pub use bitvec::BitVec;
pub use encoding::{EncoderError, FeatureSpec, UnaryEncoder};
pub use structure::{linear_nn, BuildError, NnResult, NnsParams, NnsStructure, SearchStats};
