use std::fmt;

use serde::{Deserialize, Serialize};

use crate::BitVec;

/// The value range `[min, max]` of one flow characteristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Lower bound of the range (`a` in the paper).
    pub min: f64,
    /// Upper bound of the range (`b` in the paper).
    pub max: f64,
}

impl FeatureSpec {
    /// Creates a range spec.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not strictly below `max` or either is non-finite.
    pub fn new(min: f64, max: f64) -> FeatureSpec {
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(min < max, "empty feature range [{min}, {max}]");
        FeatureSpec { min, max }
    }
}

/// Errors from building a [`UnaryEncoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncoderError {
    /// No features were given.
    NoFeatures,
    /// `bits_per_feature` was zero.
    NoBits,
}

impl fmt::Display for EncoderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncoderError::NoFeatures => write!(f, "encoder needs at least one feature"),
            EncoderError::NoBits => write!(f, "bits per feature must be positive"),
        }
    }
}

impl std::error::Error for EncoderError {}

/// Unary (thermometer) encoder mapping feature vectors into the Hamming
/// cube (paper §4.2).
///
/// Each feature's range is divided into `bits_per_feature` equal intervals;
/// a value in the `I`-th interval becomes `I` ones followed by zeros, and
/// the per-feature Hamming distance equals the interval (L1) distance.
/// Values outside the range clamp to the boundary intervals — out-of-range
/// traffic (e.g. a flood far bigger than anything in training) saturates at
/// maximal distance rather than failing.
///
/// # Examples
///
/// ```
/// use infilter_nns::{FeatureSpec, UnaryEncoder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's worked example: X1 = 3 in [0,5] over 5 bits → 11100;
/// // X2 = 6 in [0,10] over 10 bits → 1111110000.
/// let enc = UnaryEncoder::with_uneven_bits(
///     vec![(FeatureSpec::new(0.0, 5.0), 5), (FeatureSpec::new(0.0, 10.0), 10)],
/// )?;
/// assert_eq!(enc.encode(&[3.0, 6.0]).to_string(), "111001111110000");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnaryEncoder {
    features: Vec<(FeatureSpec, usize)>,
    dimension: usize,
}

impl UnaryEncoder {
    /// Creates an encoder giving every feature the same number of bits
    /// (`d = specs.len() × bits_per_feature`).
    ///
    /// # Errors
    ///
    /// Returns [`EncoderError`] if `specs` is empty or `bits_per_feature`
    /// is zero.
    pub fn new(
        specs: Vec<FeatureSpec>,
        bits_per_feature: usize,
    ) -> Result<UnaryEncoder, EncoderError> {
        Self::with_uneven_bits(specs.into_iter().map(|s| (s, bits_per_feature)).collect())
    }

    /// Creates an encoder with a per-feature bit budget.
    ///
    /// # Errors
    ///
    /// Returns [`EncoderError`] if no features are given or any budget is 0.
    pub fn with_uneven_bits(
        features: Vec<(FeatureSpec, usize)>,
    ) -> Result<UnaryEncoder, EncoderError> {
        if features.is_empty() {
            return Err(EncoderError::NoFeatures);
        }
        if features.iter().any(|&(_, bits)| bits == 0) {
            return Err(EncoderError::NoBits);
        }
        let dimension = features.iter().map(|&(_, b)| b).sum();
        Ok(UnaryEncoder {
            features,
            dimension,
        })
    }

    /// Derives feature ranges from training samples (min/max per feature,
    /// padded by 5 % so near-boundary queries don't saturate immediately).
    ///
    /// # Errors
    ///
    /// Returns [`EncoderError::NoFeatures`] if `samples` is empty or has
    /// empty rows, [`EncoderError::NoBits`] if `bits_per_feature` is zero.
    pub fn from_samples(
        samples: &[Vec<f64>],
        bits_per_feature: usize,
    ) -> Result<UnaryEncoder, EncoderError> {
        let n_features = samples.first().map(Vec::len).unwrap_or(0);
        if n_features == 0 {
            return Err(EncoderError::NoFeatures);
        }
        let mut specs = Vec::with_capacity(n_features);
        for f in 0..n_features {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for s in samples {
                lo = lo.min(s[f]);
                hi = hi.max(s[f]);
            }
            let pad = ((hi - lo) * 0.05).max(1e-9);
            specs.push(FeatureSpec::new(lo - pad, hi + pad));
        }
        UnaryEncoder::new(specs, bits_per_feature)
    }

    /// Total encoded dimension `d`.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of features.
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// The interval index (number of leading ones) feature `idx` assigns to
    /// `value`, clamped to `[0, bits]`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn interval(&self, idx: usize, value: f64) -> usize {
        let (spec, bits) = self.features[idx];
        if !value.is_finite() {
            return if value > 0.0 { bits } else { 0 };
        }
        let frac = (value - spec.min) / (spec.max - spec.min);
        ((frac * bits as f64).floor().max(0.0) as usize).min(bits)
    }

    /// Packs the interval indices of a feature vector into one `u64` — a
    /// collision-free fingerprint of the encoding: two vectors fingerprint
    /// equal iff [`UnaryEncoder::encode`] produces identical bit vectors,
    /// because the unary code is fully determined by the per-feature
    /// interval (the leading-ones count).
    ///
    /// Returns `None` when the packing cannot be exact — more than 8
    /// features, or a feature wider than 255 bits — so callers can fall
    /// back to comparing full encodings.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the encoder's feature count.
    pub fn fingerprint(&self, features: &[f64]) -> Option<u64> {
        assert_eq!(
            features.len(),
            self.features.len(),
            "expected {} features, got {}",
            self.features.len(),
            features.len()
        );
        if self.features.len() > 8 || self.features.iter().any(|&(_, bits)| bits > 255) {
            return None;
        }
        let mut packed = 0u64;
        for (idx, &value) in features.iter().enumerate() {
            packed = (packed << 8) | self.interval(idx, value) as u64;
        }
        Some(packed)
    }

    /// Encodes a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the encoder's feature count.
    pub fn encode(&self, features: &[f64]) -> BitVec {
        let mut v = BitVec::zeros(self.dimension);
        self.encode_into(features, &mut v);
        v
    }

    /// Encodes a feature vector into a caller-owned buffer, reusing its
    /// allocation — after the first call with a given buffer, encoding a
    /// suspect flow touches the heap zero times.
    ///
    /// The buffer is reset to the encoder's dimension; any previous
    /// contents and length are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the encoder's feature count.
    pub fn encode_into(&self, features: &[f64], out: &mut BitVec) {
        assert_eq!(
            features.len(),
            self.features.len(),
            "expected {} features, got {}",
            self.features.len(),
            features.len()
        );
        out.reset(self.dimension);
        let mut offset = 0;
        for (idx, &value) in features.iter().enumerate() {
            let (_, bits) = self.features[idx];
            out.set_ones(offset, self.interval(idx, value));
            offset += bits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        let enc = UnaryEncoder::with_uneven_bits(vec![
            (FeatureSpec::new(0.0, 5.0), 5),
            (FeatureSpec::new(0.0, 10.0), 10),
        ])
        .unwrap();
        assert_eq!(enc.dimension(), 15);
        assert_eq!(enc.encode(&[3.0, 6.0]).to_string(), "111001111110000");
    }

    #[test]
    fn distance_is_l1_in_interval_space() {
        let enc = UnaryEncoder::new(vec![FeatureSpec::new(0.0, 100.0)], 50).unwrap();
        let a = enc.encode(&[10.0]);
        let b = enc.encode(&[30.0]);
        // 10 → interval 5, 30 → interval 15: distance 10.
        assert_eq!(a.hamming(&b), 10);
        // Monotone: closer values → smaller distance.
        let c = enc.encode(&[12.0]);
        assert!(a.hamming(&c) < a.hamming(&b));
    }

    #[test]
    fn multi_feature_distance_adds() {
        let enc = UnaryEncoder::new(
            vec![FeatureSpec::new(0.0, 10.0), FeatureSpec::new(0.0, 10.0)],
            10,
        )
        .unwrap();
        let a = enc.encode(&[2.0, 3.0]);
        let b = enc.encode(&[5.0, 7.0]);
        assert_eq!(a.hamming(&b), 3 + 4);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let enc = UnaryEncoder::new(vec![FeatureSpec::new(0.0, 10.0)], 8).unwrap();
        assert_eq!(enc.encode(&[-5.0]).count_ones(), 0);
        assert_eq!(enc.encode(&[1e12]).count_ones(), 8);
        assert_eq!(enc.encode(&[f64::INFINITY]).count_ones(), 8);
        assert_eq!(enc.encode(&[f64::NEG_INFINITY]).count_ones(), 0);
    }

    #[test]
    fn nan_clamps_low() {
        let enc = UnaryEncoder::new(vec![FeatureSpec::new(0.0, 10.0)], 8).unwrap();
        assert_eq!(enc.encode(&[f64::NAN]).count_ones(), 0);
    }

    #[test]
    fn from_samples_covers_training_data() {
        let samples = vec![vec![5.0, 100.0], vec![10.0, 400.0], vec![7.5, 250.0]];
        let enc = UnaryEncoder::from_samples(&samples, 16).unwrap();
        assert_eq!(enc.dimension(), 32);
        // No training value saturates the encoding, and the extremes are
        // separated by most of the interval span.
        for s in &samples {
            assert!(enc.encode(s).count_ones() < 32);
        }
        let lo = enc.encode(&samples[0]);
        let hi = enc.encode(&samples[1]);
        assert!(lo.hamming(&hi) >= 24, "distance {}", lo.hamming(&hi));
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let enc = UnaryEncoder::new(
            vec![FeatureSpec::new(0.0, 10.0), FeatureSpec::new(0.0, 100.0)],
            20,
        )
        .unwrap();
        let mut scratch = BitVec::zeros(0);
        for features in [[3.0, 40.0], [0.0, 0.0], [10.0, 100.0], [-5.0, 1e9]] {
            enc.encode_into(&features, &mut scratch);
            assert_eq!(scratch, enc.encode(&features), "features {features:?}");
        }
        // A dirty, differently sized buffer is fully overwritten.
        let mut dirty = BitVec::from_bits((0..7).map(|_| true));
        enc.encode_into(&[3.0, 40.0], &mut dirty);
        assert_eq!(dirty, enc.encode(&[3.0, 40.0]));
    }

    #[test]
    fn fingerprint_equality_tracks_encoding_equality() {
        let enc = UnaryEncoder::new(
            vec![FeatureSpec::new(0.0, 10.0), FeatureSpec::new(0.0, 100.0)],
            20,
        )
        .unwrap();
        let vectors = [
            [3.0, 40.0],
            [3.2, 40.1],
            [0.0, 0.0],
            [10.0, 100.0],
            [-5.0, 1e9],
        ];
        for a in vectors {
            for b in vectors {
                let same_fp = enc.fingerprint(&a) == enc.fingerprint(&b);
                let same_code = enc.encode(&a) == enc.encode(&b);
                assert_eq!(same_fp, same_code, "{a:?} vs {b:?}");
            }
        }
        // Too many features for an exact packing: declined, not wrong.
        let wide = UnaryEncoder::new(vec![FeatureSpec::new(0.0, 1.0); 9], 4).unwrap();
        assert_eq!(wide.fingerprint(&[0.5; 9]), None);
    }

    #[test]
    fn constructor_errors() {
        assert_eq!(
            UnaryEncoder::new(vec![], 8).unwrap_err(),
            EncoderError::NoFeatures
        );
        assert_eq!(
            UnaryEncoder::new(vec![FeatureSpec::new(0.0, 1.0)], 0).unwrap_err(),
            EncoderError::NoBits
        );
        assert_eq!(
            UnaryEncoder::from_samples(&[], 8).unwrap_err(),
            EncoderError::NoFeatures
        );
    }

    #[test]
    #[should_panic(expected = "empty feature range")]
    fn degenerate_spec_panics() {
        FeatureSpec::new(5.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn encode_wrong_arity_panics() {
        let enc = UnaryEncoder::new(
            vec![FeatureSpec::new(0.0, 1.0), FeatureSpec::new(0.0, 1.0)],
            4,
        )
        .unwrap();
        enc.encode(&[0.5]);
    }
}
