//! UDP transport: the paper's BR → flow-tools path over real sockets
//! ("A NetFlow enabled router will periodically send datagrams to a
//! pre-designated receiver node", §5.1.1).

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use infilter_netflow::Datagram;

use crate::{CollectedFlow, Collector};

/// Sends NetFlow v5 datagrams to a collector over UDP. The *destination
/// port* doubles as the Dagflow-instance identifier, exactly as on the
/// paper's testbed.
#[derive(Debug)]
pub struct UdpExporter {
    socket: UdpSocket,
}

impl UdpExporter {
    /// Binds an ephemeral local socket for sending.
    ///
    /// # Errors
    ///
    /// Propagates socket-creation failures.
    pub fn new() -> io::Result<UdpExporter> {
        Ok(UdpExporter {
            socket: UdpSocket::bind(("127.0.0.1", 0))?,
        })
    }

    /// Sends one datagram to `dest`.
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn send<A: ToSocketAddrs>(&self, dest: A, datagram: &Datagram) -> io::Result<()> {
        let bytes = datagram.encode();
        self.socket.send_to(&bytes, dest).map(|_| ())
    }
}

/// Receives NetFlow v5 datagrams on a UDP socket and feeds a [`Collector`].
///
/// One receiver per export port mirrors flow-capture's deployment; the
/// port the socket is bound to becomes the `export_port` of every
/// collected flow.
#[derive(Debug)]
pub struct UdpReceiver {
    socket: UdpSocket,
    port: u16,
    collector: Collector,
}

impl UdpReceiver {
    /// Binds `127.0.0.1:port`; port 0 picks an ephemeral port (see
    /// [`UdpReceiver::port`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(port: u16) -> io::Result<UdpReceiver> {
        let socket = UdpSocket::bind(("127.0.0.1", port))?;
        let port = socket.local_addr()?.port();
        Ok(UdpReceiver {
            socket,
            port,
            collector: Collector::new(),
        })
    }

    /// The bound port (useful with ephemeral binding).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The local socket address.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Receives one datagram (blocking up to `timeout`) and decodes it.
    /// Returns `Ok(None)` on timeout; malformed datagrams are counted in
    /// the collector statistics and reported as an empty batch.
    ///
    /// # Errors
    ///
    /// Propagates socket failures other than timeouts.
    pub fn recv_once(&mut self, timeout: Duration) -> io::Result<Option<Vec<CollectedFlow>>> {
        self.socket.set_read_timeout(Some(timeout))?;
        let mut buf = [0u8; 2048];
        match self.socket.recv_from(&mut buf) {
            Ok((n, _)) => Ok(Some(
                self.collector
                    .ingest(self.port, &buf[..n])
                    .unwrap_or_default(),
            )),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Drains datagrams until `timeout` passes with no traffic, returning
    /// every collected flow.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn drain(&mut self, timeout: Duration) -> io::Result<Vec<CollectedFlow>> {
        let mut flows = Vec::new();
        while let Some(batch) = self.recv_once(timeout)? {
            flows.extend(batch);
        }
        Ok(flows)
    }

    /// The underlying collector (sequence-gap statistics, per-port counts).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infilter_netflow::FlowRecord;

    fn record(i: u32) -> FlowRecord {
        FlowRecord {
            src_addr: std::net::Ipv4Addr::from(0x03000000 + i),
            packets: 1 + i,
            octets: 100,
            dst_port: 80,
            protocol: 6,
            ..FlowRecord::default()
        }
    }

    #[test]
    fn loopback_round_trip() {
        let mut rx = UdpReceiver::bind(0).expect("bind receiver");
        let tx = UdpExporter::new().expect("bind exporter");
        let addr = rx.local_addr().expect("addr");

        for batch in 0..3u32 {
            let records: Vec<FlowRecord> = (0..5).map(|i| record(batch * 5 + i)).collect();
            let dg = Datagram::new(batch * 5, 1000, &records);
            tx.send(addr, &dg).expect("send");
        }
        let flows = rx.drain(Duration::from_millis(300)).expect("drain");
        assert_eq!(flows.len(), 15);
        assert!(flows.iter().all(|f| f.export_port == rx.port()));
        let stats = rx.collector().stats(rx.port()).expect("port stats");
        assert_eq!(stats.datagrams, 3);
        assert_eq!(stats.lost_flows, 0);
    }

    #[test]
    fn timeout_returns_none() {
        let mut rx = UdpReceiver::bind(0).expect("bind receiver");
        let got = rx
            .recv_once(Duration::from_millis(50))
            .expect("no socket error");
        assert!(got.is_none());
    }

    #[test]
    fn garbage_datagrams_are_counted_not_fatal() {
        let mut rx = UdpReceiver::bind(0).expect("bind receiver");
        let tx = UdpSocket::bind(("127.0.0.1", 0)).expect("bind");
        tx.send_to(&[1, 2, 3], rx.local_addr().expect("addr"))
            .expect("send");
        let batch = rx
            .recv_once(Duration::from_millis(300))
            .expect("no socket error")
            .expect("datagram arrived");
        assert!(batch.is_empty());
        assert_eq!(
            rx.collector()
                .stats(rx.port())
                .expect("stats")
                .decode_errors,
            1
        );
    }

    #[test]
    fn sequence_gaps_are_visible_over_the_wire() {
        let mut rx = UdpReceiver::bind(0).expect("bind receiver");
        let tx = UdpExporter::new().expect("exporter");
        let addr = rx.local_addr().expect("addr");
        tx.send(addr, &Datagram::new(0, 0, &[record(0)]))
            .expect("send");
        // Skip sequence 1..=3: three flows "lost in the network".
        tx.send(addr, &Datagram::new(4, 0, &[record(1)]))
            .expect("send");
        let flows = rx.drain(Duration::from_millis(300)).expect("drain");
        assert_eq!(flows.len(), 2);
        assert_eq!(
            rx.collector().stats(rx.port()).expect("stats").lost_flows,
            3
        );
    }
}
