use std::collections::BTreeMap;

use crossbeam::channel::{Receiver, Sender};
use infilter_netflow::{Datagram, DecodeError, FlowRecord};
use serde::{Deserialize, Serialize};

/// A decoded flow annotated with the export port it arrived on — the
/// testbed's stand-in for "which border router / peer AS saw this flow".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectedFlow {
    /// UDP export port of the emitting Dagflow instance / BR.
    pub export_port: u16,
    /// The flow record.
    pub record: FlowRecord,
}

/// Per-port collection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectorStats {
    /// Datagrams accepted.
    pub datagrams: u64,
    /// Flow records extracted.
    pub flows: u64,
    /// Flows missing according to sequence-number gaps.
    pub lost_flows: u64,
    /// Datagrams rejected by the decoder.
    pub decode_errors: u64,
}

/// Receives NetFlow v5 datagrams from many exporters and demultiplexes
/// them (the `flow-capture` role).
///
/// # Examples
///
/// ```
/// use infilter_flowtools::Collector;
/// use infilter_netflow::{Datagram, FlowRecord};
///
/// let mut c = Collector::new();
/// let dg = Datagram::new(0, 10, &[FlowRecord::default()]);
/// let flows = c.ingest(9001, &dg.encode()).unwrap();
/// assert_eq!(flows.len(), 1);
/// assert_eq!(flows[0].export_port, 9001);
/// ```
#[derive(Debug, Default)]
pub struct Collector {
    per_port: BTreeMap<u16, PortState>,
}

#[derive(Debug, Default)]
struct PortState {
    stats: CollectorStats,
    next_sequence: Option<u32>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Ingests one wire datagram received on `port`.
    ///
    /// # Errors
    ///
    /// Returns the [`DecodeError`] for malformed datagrams (also counted in
    /// the port's statistics).
    pub fn ingest(&mut self, port: u16, bytes: &[u8]) -> Result<Vec<CollectedFlow>, DecodeError> {
        match Datagram::decode(bytes) {
            Ok(dg) => Ok(self.ingest_datagram(port, &dg)),
            Err(e) => {
                self.per_port.entry(port).or_default().stats.decode_errors += 1;
                Err(e)
            }
        }
    }

    /// Ingests an already-decoded datagram.
    pub fn ingest_datagram(&mut self, port: u16, dg: &Datagram) -> Vec<CollectedFlow> {
        let state = self.per_port.entry(port).or_default();
        state.stats.datagrams += 1;
        state.stats.flows += dg.records.len() as u64;
        if let Some(expected) = state.next_sequence {
            let gap = dg.header.flow_sequence.wrapping_sub(expected);
            // Only forward gaps count as loss; resets wrap hugely and are
            // ignored (a restarted exporter).
            if gap > 0 && gap < u32::MAX / 2 {
                state.stats.lost_flows += gap as u64;
            }
        }
        state.next_sequence = Some(
            dg.header
                .flow_sequence
                .wrapping_add(dg.records.len() as u32),
        );
        dg.records
            .iter()
            .map(|&record| CollectedFlow {
                export_port: port,
                record,
            })
            .collect()
    }

    /// Statistics for one port, if anything arrived on it.
    pub fn stats(&self, port: u16) -> Option<CollectorStats> {
        self.per_port.get(&port).map(|s| s.stats)
    }

    /// Ports seen so far, ascending.
    pub fn ports(&self) -> Vec<u16> {
        self.per_port.keys().copied().collect()
    }
}

/// Spawns a collector thread bridging two crossbeam channels: raw
/// `(port, bytes)` datagrams in, [`CollectedFlow`]s out (the concurrent
/// deployment of the paper's Figure 9). The thread ends when the input
/// channel closes; the final [`Collector`] (with its statistics) is
/// returned through the join handle.
pub fn pipeline(
    datagrams: Receiver<(u16, Vec<u8>)>,
    flows: Sender<CollectedFlow>,
) -> std::thread::JoinHandle<Collector> {
    std::thread::spawn(move || {
        let mut collector = Collector::new();
        while let Ok((port, bytes)) = datagrams.recv() {
            if let Ok(batch) = collector.ingest(port, &bytes) {
                for f in batch {
                    if flows.send(f).is_err() {
                        return collector; // downstream hung up
                    }
                }
            }
        }
        collector
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u32) -> FlowRecord {
        FlowRecord {
            src_addr: std::net::Ipv4Addr::from(0x0a000000 + i),
            packets: 1,
            octets: 100,
            ..FlowRecord::default()
        }
    }

    #[test]
    fn demultiplexes_by_port() {
        let mut c = Collector::new();
        let dg = Datagram::new(0, 0, &[record(1)]);
        c.ingest_datagram(9001, &dg);
        c.ingest_datagram(9002, &dg);
        assert_eq!(c.ports(), vec![9001, 9002]);
        assert_eq!(c.stats(9001).unwrap().flows, 1);
        assert_eq!(c.stats(9003), None);
    }

    #[test]
    fn sequence_gap_counts_lost_flows() {
        let mut c = Collector::new();
        c.ingest_datagram(1, &Datagram::new(0, 0, &[record(1), record(2)]));
        // Next expected sequence is 2; jumping to 7 loses 5 flows.
        c.ingest_datagram(1, &Datagram::new(7, 0, &[record(3)]));
        let s = c.stats(1).unwrap();
        assert_eq!(s.lost_flows, 5);
        assert_eq!(s.flows, 3);
        assert_eq!(s.datagrams, 2);
    }

    #[test]
    fn exporter_restart_is_not_loss() {
        let mut c = Collector::new();
        c.ingest_datagram(1, &Datagram::new(1000, 0, &[record(1)]));
        c.ingest_datagram(1, &Datagram::new(0, 0, &[record(2)])); // reset
        assert_eq!(c.stats(1).unwrap().lost_flows, 0);
    }

    #[test]
    fn malformed_datagram_is_counted_and_reported() {
        let mut c = Collector::new();
        assert!(c.ingest(5, &[1, 2, 3]).is_err());
        assert_eq!(c.stats(5).unwrap().decode_errors, 1);
        assert_eq!(c.stats(5).unwrap().flows, 0);
    }

    #[test]
    fn pipeline_moves_flows_across_threads() {
        let (dg_tx, dg_rx) = crossbeam::channel::unbounded();
        let (flow_tx, flow_rx) = crossbeam::channel::unbounded();
        let handle = pipeline(dg_rx, flow_tx);
        for port in [9001u16, 9002] {
            let dg = Datagram::new(0, 0, &[record(port as u32), record(port as u32 + 1)]);
            dg_tx.send((port, dg.encode().to_vec())).unwrap();
        }
        drop(dg_tx);
        let collector = handle.join().unwrap();
        let collected: Vec<CollectedFlow> = flow_rx.iter().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collector.stats(9001).unwrap().flows, 2);
        assert_eq!(collector.stats(9002).unwrap().flows, 2);
    }
}
