use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::CollectedFlow;

/// Fields flows can be grouped by (a subset of `flow-report`'s grouping
/// keys; "increasing the number of fields increases the granularity of the
/// computed statistics").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GroupField {
    /// Source IP address.
    SrcAddr,
    /// Destination IP address.
    DstAddr,
    /// IP protocol.
    Protocol,
    /// Source port.
    SrcPort,
    /// Destination port.
    DstPort,
    /// Input interface index.
    InputIf,
    /// Source AS number.
    SrcAs,
    /// Export port (which BR / Dagflow instance reported the flow).
    ExportPort,
}

/// One concrete value of a [`GroupField`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GroupKeyValue {
    /// An address-valued key.
    Addr(Ipv4Addr),
    /// An integer-valued key.
    Num(u32),
}

impl fmt::Display for GroupKeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupKeyValue::Addr(a) => write!(f, "{a}"),
            GroupKeyValue::Num(n) => write!(f, "{n}"),
        }
    }
}

fn key_value(field: GroupField, flow: &CollectedFlow) -> GroupKeyValue {
    let r = &flow.record;
    match field {
        GroupField::SrcAddr => GroupKeyValue::Addr(r.src_addr),
        GroupField::DstAddr => GroupKeyValue::Addr(r.dst_addr),
        GroupField::Protocol => GroupKeyValue::Num(r.protocol as u32),
        GroupField::SrcPort => GroupKeyValue::Num(r.src_port as u32),
        GroupField::DstPort => GroupKeyValue::Num(r.dst_port as u32),
        GroupField::InputIf => GroupKeyValue::Num(r.input_if as u32),
        GroupField::SrcAs => GroupKeyValue::Num(r.src_as as u32),
        GroupField::ExportPort => GroupKeyValue::Num(flow.export_port as u32),
    }
}

/// Aggregated statistics for one group of flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRow {
    /// The group's key values, in the order of the grouping fields.
    pub key: Vec<GroupKeyValue>,
    /// Number of flows in the group.
    pub flows: u64,
    /// Total packets.
    pub packets: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Sum of flow durations, ms.
    pub duration_ms: u64,
    /// Mean bit rate across the group's flows.
    pub avg_bits_per_sec: f64,
    /// Mean packet rate across the group's flows.
    pub avg_packets_per_sec: f64,
}

/// Grouped flow statistics (the `flow-report` role).
///
/// # Examples
///
/// ```
/// use infilter_flowtools::{CollectedFlow, GroupField, Report};
/// use infilter_netflow::FlowRecord;
///
/// let flows = vec![
///     CollectedFlow { export_port: 1, record: FlowRecord { dst_port: 80, packets: 2, octets: 100, ..FlowRecord::default() } },
///     CollectedFlow { export_port: 1, record: FlowRecord { dst_port: 80, packets: 3, octets: 200, ..FlowRecord::default() } },
///     CollectedFlow { export_port: 1, record: FlowRecord { dst_port: 53, packets: 1, octets: 60, ..FlowRecord::default() } },
/// ];
/// let report = Report::generate(&flows, &[GroupField::DstPort]);
/// assert_eq!(report.rows().len(), 2);
/// let port80 = &report.rows()[1];
/// assert_eq!(port80.flows, 2);
/// assert_eq!(port80.bytes, 300);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    fields: Vec<GroupField>,
    rows: Vec<ReportRow>,
}

impl Report {
    /// Groups `flows` by `fields` and aggregates. With no fields, one row
    /// summarises everything. Rows are ordered by key.
    pub fn generate(flows: &[CollectedFlow], fields: &[GroupField]) -> Report {
        #[derive(Default)]
        struct Acc {
            flows: u64,
            packets: u64,
            bytes: u64,
            duration_ms: u64,
            bps_sum: f64,
            pps_sum: f64,
        }
        let mut groups: BTreeMap<Vec<GroupKeyValue>, Acc> = BTreeMap::new();
        for f in flows {
            let key: Vec<GroupKeyValue> = fields.iter().map(|&g| key_value(g, f)).collect();
            let acc = groups.entry(key).or_default();
            let stats = f.record.stats();
            acc.flows += 1;
            acc.packets += stats.packets;
            acc.bytes += stats.bytes;
            acc.duration_ms += stats.duration_ms;
            acc.bps_sum += stats.bits_per_sec;
            acc.pps_sum += stats.packets_per_sec;
        }
        let rows = groups
            .into_iter()
            .map(|(key, acc)| ReportRow {
                key,
                flows: acc.flows,
                packets: acc.packets,
                bytes: acc.bytes,
                duration_ms: acc.duration_ms,
                avg_bits_per_sec: acc.bps_sum / acc.flows as f64,
                avg_packets_per_sec: acc.pps_sum / acc.flows as f64,
            })
            .collect();
        Report {
            fields: fields.to_vec(),
            rows,
        }
    }

    /// The grouping fields.
    pub fn fields(&self) -> &[GroupField] {
        &self.fields
    }

    /// The aggregated rows, ordered by key.
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// Renders the report as an ASCII table (the `flow-report` output
    /// format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.fields {
            out.push_str(&format!("{f:?}\t"));
        }
        out.push_str("flows\tpackets\tbytes\tduration_ms\tavg_bps\tavg_pps\n");
        for row in &self.rows {
            for k in &row.key {
                out.push_str(&format!("{k}\t"));
            }
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{:.1}\t{:.1}\n",
                row.flows,
                row.packets,
                row.bytes,
                row.duration_ms,
                row.avg_bits_per_sec,
                row.avg_packets_per_sec
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infilter_netflow::FlowRecord;

    fn flow(port: u16, src: &str, dst_port: u16, packets: u32, octets: u32) -> CollectedFlow {
        CollectedFlow {
            export_port: port,
            record: FlowRecord {
                src_addr: src.parse().unwrap(),
                dst_port,
                packets,
                octets,
                first_ms: 0,
                last_ms: 1000,
                protocol: 6,
                ..FlowRecord::default()
            },
        }
    }

    #[test]
    fn ungrouped_report_is_one_row() {
        let flows = vec![
            flow(1, "10.0.0.1", 80, 2, 100),
            flow(2, "10.0.0.2", 53, 3, 60),
        ];
        let r = Report::generate(&flows, &[]);
        assert_eq!(r.rows().len(), 1);
        assert_eq!(r.rows()[0].flows, 2);
        assert_eq!(r.rows()[0].packets, 5);
        assert_eq!(r.rows()[0].bytes, 160);
    }

    #[test]
    fn multi_field_grouping_increases_granularity() {
        let flows = vec![
            flow(1, "10.0.0.1", 80, 1, 10),
            flow(1, "10.0.0.1", 53, 1, 10),
            flow(2, "10.0.0.1", 80, 1, 10),
        ];
        let coarse = Report::generate(&flows, &[GroupField::SrcAddr]);
        assert_eq!(coarse.rows().len(), 1);
        let fine = Report::generate(&flows, &[GroupField::SrcAddr, GroupField::DstPort]);
        assert_eq!(fine.rows().len(), 2);
        let finest = Report::generate(
            &flows,
            &[
                GroupField::SrcAddr,
                GroupField::DstPort,
                GroupField::ExportPort,
            ],
        );
        assert_eq!(finest.rows().len(), 3);
    }

    #[test]
    fn rates_average_over_group_members() {
        // Two 1-second flows: 800 and 1600 bits → mean 1200 bps.
        let flows = vec![
            flow(1, "10.0.0.1", 80, 1, 100),
            flow(1, "10.0.0.2", 80, 1, 200),
        ];
        let r = Report::generate(&flows, &[GroupField::DstPort]);
        assert_eq!(r.rows().len(), 1);
        assert!((r.rows()[0].avg_bits_per_sec - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn rows_are_key_ordered() {
        let flows = vec![
            flow(1, "10.0.0.9", 443, 1, 10),
            flow(1, "10.0.0.1", 80, 1, 10),
            flow(1, "10.0.0.5", 25, 1, 10),
        ];
        let r = Report::generate(&flows, &[GroupField::SrcAddr]);
        let keys: Vec<String> = r.rows().iter().map(|row| row.key[0].to_string()).collect();
        assert_eq!(keys, vec!["10.0.0.1", "10.0.0.5", "10.0.0.9"]);
    }

    #[test]
    fn render_contains_headers_and_rows() {
        let flows = vec![flow(1, "10.0.0.1", 80, 2, 100)];
        let text = Report::generate(&flows, &[GroupField::DstPort]).render();
        assert!(text.contains("DstPort"));
        assert!(text.contains("flows"));
        assert!(text.contains("80"));
    }

    #[test]
    fn empty_input_empty_report() {
        let r = Report::generate(&[], &[GroupField::SrcAddr]);
        assert!(r.rows().is_empty());
        assert!(r.render().contains("flows"));
    }
}
