//! flow-tools substitute: collection, binary storage and reporting of
//! NetFlow records (paper §5.1.2).
//!
//! The paper deploys the freeware *flow-tools* suite between the NetFlow
//! exporters and the analysis modules: `flow-capture` receives datagrams
//! and stores them in a binary format, `flow-report` turns them into
//! per-flow or grouped ASCII statistics. This crate fills the same slot:
//!
//! * [`Collector`] decodes wire datagrams, demultiplexes Dagflow instances
//!   by export port, and tracks per-port sequence gaps (lost datagrams);
//! * [`FlowStore`] is the binary on-disk format (`flow-capture`'s role);
//! * [`Report`] groups flows by any combination of key fields and computes
//!   the statistics the detection pipeline consumes (`flow-report`'s role).
//!
//! A [`pipeline`] helper wires a collector thread to a crossbeam channel
//! for deployments where capture and analysis run concurrently, as in the
//! paper's Figure 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod collector;
mod filter;
mod report;
mod store;
mod udp;

pub use ascii::{export_ascii, import_ascii, AsciiImportError};
pub use collector::{pipeline, CollectedFlow, Collector, CollectorStats};
pub use filter::{towards_target, FlowFilter, FlowPredicate};
pub use report::{GroupField, GroupKeyValue, Report, ReportRow};
pub use store::{FlowStore, StoreError};
pub use udp::{UdpExporter, UdpReceiver};
