use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use infilter_netflow::{Datagram, FlowRecord};

use crate::CollectedFlow;

/// Magic number of the binary flow-store format (`"IFLT"`).
const MAGIC: [u8; 4] = *b"IFLT";
const FORMAT_VERSION: u16 = 1;

/// Binary on-disk flow storage — the `flow-capture` role: "flow data ... is
/// stored in binary format to speed processing and save storage space".
///
/// Layout: 8-byte header (magic, version, reserved) followed by fixed-size
/// records (2-byte export port + the 48-byte NetFlow v5 record encoding).
///
/// # Examples
///
/// ```no_run
/// use infilter_flowtools::{CollectedFlow, FlowStore};
/// use infilter_netflow::FlowRecord;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let flows = vec![CollectedFlow { export_port: 9001, record: FlowRecord::default() }];
/// FlowStore::write_path("capture.iflt", &flows)?;
/// let back = FlowStore::read_path("capture.iflt")?;
/// assert_eq!(back, flows);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FlowStore;

/// Errors from reading a flow store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file did not start with the `IFLT` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u16),
    /// The file ended inside a record.
    TruncatedRecord {
        /// Records successfully read before the truncation.
        complete: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic(m) => write!(f, "bad magic {m:?}, not a flow store"),
            StoreError::BadVersion(v) => write!(f, "unsupported flow-store version {v}"),
            StoreError::TruncatedRecord { complete } => {
                write!(f, "file truncated after {complete} complete records")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

const RECORD_LEN: usize = 2 + 48;

impl FlowStore {
    /// Serialises flows to any writer.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write<W: Write>(mut w: W, flows: &[CollectedFlow]) -> io::Result<()> {
        let mut header = BytesMut::with_capacity(8);
        header.put_slice(&MAGIC);
        header.put_u16(FORMAT_VERSION);
        header.put_u16(0); // reserved
        w.write_all(&header)?;
        for f in flows {
            // Reuse the v5 wire encoding by wrapping the record in a
            // single-record datagram and slicing the record bytes out.
            let dg = Datagram::new(0, 0, std::slice::from_ref(&f.record));
            let encoded = dg.encode();
            let mut rec = BytesMut::with_capacity(RECORD_LEN);
            rec.put_u16(f.export_port);
            rec.put_slice(&encoded[24..]);
            w.write_all(&rec)?;
        }
        w.flush()
    }

    /// Reads flows back from any reader.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure or a malformed file.
    pub fn read<R: Read>(mut r: R) -> Result<Vec<CollectedFlow>, StoreError> {
        let mut header = [0u8; 8];
        r.read_exact(&mut header).map_err(StoreError::Io)?;
        if header[0..4] != MAGIC {
            return Err(StoreError::BadMagic([
                header[0], header[1], header[2], header[3],
            ]));
        }
        let version = u16::from_be_bytes([header[4], header[5]]);
        if version != FORMAT_VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let mut flows = Vec::new();
        let mut buf = vec![0u8; RECORD_LEN];
        loop {
            match read_full(&mut r, &mut buf) {
                FillResult::Full => {}
                FillResult::Empty => break,
                FillResult::Partial => {
                    return Err(StoreError::TruncatedRecord {
                        complete: flows.len(),
                    })
                }
                FillResult::Err(e) => return Err(StoreError::Io(e)),
            }
            let mut slice = &buf[..];
            let export_port = slice.get_u16();
            // Rebuild a single-record datagram to reuse the v5 decoder.
            let dg = Datagram::new(0, 0, &[FlowRecord::default()]);
            let mut full = dg.encode().to_vec();
            full[24..].copy_from_slice(slice);
            let decoded = Datagram::decode(&full).map_err(|_| StoreError::TruncatedRecord {
                complete: flows.len(),
            })?;
            flows.push(CollectedFlow {
                export_port,
                record: decoded.records[0],
            });
        }
        Ok(flows)
    }

    /// Writes flows to a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn write_path<P: AsRef<Path>>(path: P, flows: &[CollectedFlow]) -> io::Result<()> {
        FlowStore::write(BufWriter::new(File::create(path)?), flows)
    }

    /// Reads flows from a file path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure or a malformed file.
    pub fn read_path<P: AsRef<Path>>(path: P) -> Result<Vec<CollectedFlow>, StoreError> {
        FlowStore::read(BufReader::new(File::open(path)?))
    }
}

enum FillResult {
    Full,
    Empty,
    Partial,
    Err(io::Error),
}

fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> FillResult {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return FillResult::Empty,
            Ok(0) => return FillResult::Partial,
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return FillResult::Err(e),
        }
    }
    FillResult::Full
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(n: u32) -> Vec<CollectedFlow> {
        (0..n)
            .map(|i| CollectedFlow {
                export_port: 9000 + (i % 10) as u16,
                record: FlowRecord {
                    src_addr: std::net::Ipv4Addr::from(0x03000000 + i),
                    dst_addr: "96.1.0.20".parse().unwrap(),
                    packets: i + 1,
                    octets: (i + 1) * 100,
                    first_ms: i * 10,
                    last_ms: i * 10 + 5,
                    protocol: 6,
                    dst_port: 80,
                    ..FlowRecord::default()
                },
            })
            .collect()
    }

    #[test]
    fn round_trip_in_memory() {
        let data = flows(100);
        let mut buf = Vec::new();
        FlowStore::write(&mut buf, &data).unwrap();
        assert_eq!(buf.len(), 8 + 100 * RECORD_LEN);
        let back = FlowStore::read(&buf[..]).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_store_round_trips() {
        let mut buf = Vec::new();
        FlowStore::write(&mut buf, &[]).unwrap();
        assert_eq!(FlowStore::read(&buf[..]).unwrap(), vec![]);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        FlowStore::write(&mut buf, &flows(1)).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            FlowStore::read(&bad[..]),
            Err(StoreError::BadMagic(_))
        ));
        let mut bad = buf.clone();
        bad[5] = 9;
        assert!(matches!(
            FlowStore::read(&bad[..]),
            Err(StoreError::BadVersion(9))
        ));
    }

    #[test]
    fn truncated_file_reports_complete_count() {
        let mut buf = Vec::new();
        FlowStore::write(&mut buf, &flows(3)).unwrap();
        buf.truncate(8 + 2 * RECORD_LEN + 10);
        match FlowStore::read(&buf[..]) {
            Err(StoreError::TruncatedRecord { complete }) => assert_eq!(complete, 2),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("infilter-flowstore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("capture.iflt");
        let data = flows(37);
        FlowStore::write_path(&path, &data).unwrap();
        assert_eq!(FlowStore::read_path(&path).unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }
}
