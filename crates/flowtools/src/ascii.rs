//! ASCII export/import — the `flow-export` / `flow-import` role: "export
//! to/import from ASCII format" (§5.1.2).
//!
//! One line per flow, tab-separated, with a `#` header describing the
//! columns; the same shape flow-print emits, so files interchange with
//! shell tooling (`awk`, `sort`, `grep`).

use std::fmt;

use infilter_netflow::FlowRecord;

use crate::CollectedFlow;

const HEADER: &str = "#export_port\tsrc_addr\tdst_addr\tproto\tsrc_port\tdst_port\tpackets\toctets\tfirst_ms\tlast_ms\ttcp_flags\tinput_if\tsrc_as";

/// Renders flows as tab-separated ASCII with a header line.
pub fn export_ascii(flows: &[CollectedFlow]) -> String {
    let mut out = String::with_capacity(flows.len() * 64 + HEADER.len());
    out.push_str(HEADER);
    out.push('\n');
    for f in flows {
        let r = &f.record;
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:#04x}\t{}\t{}\n",
            f.export_port,
            r.src_addr,
            r.dst_addr,
            r.protocol,
            r.src_port,
            r.dst_port,
            r.packets,
            r.octets,
            r.first_ms,
            r.last_ms,
            r.tcp_flags,
            r.input_if,
            r.src_as,
        ));
    }
    out
}

/// Error from [`import_ascii`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsciiImportError {
    line: usize,
    message: String,
}

impl AsciiImportError {
    fn new(line: usize, message: impl Into<String>) -> AsciiImportError {
        AsciiImportError {
            line,
            message: message.into(),
        }
    }

    /// Zero-based offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for AsciiImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsciiImportError {}

/// Parses flows back from the ASCII format. Comment lines (`#`) and blank
/// lines are skipped.
///
/// # Errors
///
/// Returns [`AsciiImportError`] on rows with missing or unparsable fields.
///
/// # Examples
///
/// ```
/// use infilter_flowtools::{export_ascii, import_ascii, CollectedFlow};
/// use infilter_netflow::FlowRecord;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let flows = vec![CollectedFlow {
///     export_port: 9001,
///     record: FlowRecord { dst_port: 80, packets: 3, octets: 120, ..FlowRecord::default() },
/// }];
/// let text = export_ascii(&flows);
/// assert_eq!(import_ascii(&text)?, flows);
/// # Ok(())
/// # }
/// ```
pub fn import_ascii(text: &str) -> Result<Vec<CollectedFlow>, AsciiImportError> {
    let mut flows = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 13 {
            return Err(AsciiImportError::new(
                lineno,
                format!("expected 13 fields, got {}", fields.len()),
            ));
        }
        let num = |i: usize, what: &str| -> Result<u64, AsciiImportError> {
            let f = fields[i];
            let parsed = if let Some(hex) = f.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                f.parse()
            };
            parsed.map_err(|_| AsciiImportError::new(lineno, format!("bad {what} `{f}`")))
        };
        let addr = |i: usize, what: &str| -> Result<std::net::Ipv4Addr, AsciiImportError> {
            fields[i]
                .parse()
                .map_err(|_| AsciiImportError::new(lineno, format!("bad {what} `{}`", fields[i])))
        };
        flows.push(CollectedFlow {
            export_port: num(0, "export port")? as u16,
            record: FlowRecord {
                src_addr: addr(1, "source address")?,
                dst_addr: addr(2, "destination address")?,
                protocol: num(3, "protocol")? as u8,
                src_port: num(4, "source port")? as u16,
                dst_port: num(5, "destination port")? as u16,
                packets: num(6, "packets")? as u32,
                octets: num(7, "octets")? as u32,
                first_ms: num(8, "first_ms")? as u32,
                last_ms: num(9, "last_ms")? as u32,
                tcp_flags: num(10, "tcp flags")? as u8,
                input_if: num(11, "input_if")? as u16,
                src_as: num(12, "src_as")? as u16,
                ..FlowRecord::default()
            },
        });
    }
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows() -> Vec<CollectedFlow> {
        (0..20u32)
            .map(|i| CollectedFlow {
                export_port: 9000 + (i % 4) as u16,
                record: FlowRecord {
                    src_addr: std::net::Ipv4Addr::from(0x0300_0000 + i * 7),
                    dst_addr: "96.1.0.20".parse().unwrap(),
                    protocol: if i % 3 == 0 { 17 } else { 6 },
                    src_port: 1024 + i as u16,
                    dst_port: 80,
                    packets: i + 1,
                    octets: (i + 1) * 120,
                    first_ms: i * 50,
                    last_ms: i * 50 + 400,
                    tcp_flags: (i % 32) as u8,
                    input_if: 1 + (i % 4) as u16,
                    src_as: (i % 4) as u16,
                    ..FlowRecord::default()
                },
            })
            .collect()
    }

    #[test]
    fn export_import_round_trips() {
        let original = flows();
        let text = export_ascii(&original);
        assert!(text.starts_with('#'));
        assert_eq!(text.lines().count(), original.len() + 1);
        assert_eq!(import_ascii(&text).unwrap(), original);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = format!("# a comment\n\n{}", export_ascii(&flows()[..2]));
        assert_eq!(import_ascii(&text).unwrap().len(), 2);
        assert!(import_ascii("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn field_count_and_value_errors_point_at_the_line() {
        let err = import_ascii("1\t2\t3\n").unwrap_err();
        assert_eq!(err.line(), 0);
        assert!(err.to_string().contains("13 fields"));

        let mut text = export_ascii(&flows()[..1]);
        text = text.replace("96.1.0.20", "not-an-ip");
        let err = import_ascii(&text).unwrap_err();
        assert_eq!(err.line(), 1); // header is line 0
        assert!(err.to_string().contains("destination address"));
    }

    #[test]
    fn shell_friendliness_columns_align_with_header() {
        let text = export_ascii(&flows()[..1]);
        let header_cols = text.lines().next().unwrap().split('\t').count();
        let row_cols = text.lines().nth(1).unwrap().split('\t').count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(header_cols, 13);
    }
}
