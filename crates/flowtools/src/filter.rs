//! Flow filtering — the `flow-nfilter` role: "Other tools in the suite …
//! filter flows based on some parameters" (§5.1.2).

use std::ops::RangeInclusive;

use infilter_net::Prefix;
use serde::{Deserialize, Serialize};

use crate::CollectedFlow;

/// One filter predicate over a flow's fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowPredicate {
    /// Source address inside the prefix.
    SrcInPrefix(Prefix),
    /// Destination address inside the prefix.
    DstInPrefix(Prefix),
    /// IP protocol equals.
    Protocol(u8),
    /// Destination port inside the range.
    DstPort(RangeInclusive<u16>),
    /// Source port inside the range.
    SrcPort(RangeInclusive<u16>),
    /// Flow started inside the window (exporter ms).
    StartedIn(RangeInclusive<u32>),
    /// Packet count inside the range.
    Packets(RangeInclusive<u32>),
    /// Byte count inside the range.
    Octets(RangeInclusive<u32>),
    /// Export port (Dagflow instance / BR) equals.
    ExportPort(u16),
    /// Input interface equals.
    InputIf(u16),
    /// Negation of an inner predicate.
    Not(Box<FlowPredicate>),
}

impl FlowPredicate {
    /// Evaluates the predicate on one flow.
    pub fn matches(&self, flow: &CollectedFlow) -> bool {
        let r = &flow.record;
        match self {
            FlowPredicate::SrcInPrefix(p) => p.contains(r.src_addr),
            FlowPredicate::DstInPrefix(p) => p.contains(r.dst_addr),
            FlowPredicate::Protocol(proto) => r.protocol == *proto,
            FlowPredicate::DstPort(range) => range.contains(&r.dst_port),
            FlowPredicate::SrcPort(range) => range.contains(&r.src_port),
            FlowPredicate::StartedIn(range) => range.contains(&r.first_ms),
            FlowPredicate::Packets(range) => range.contains(&r.packets),
            FlowPredicate::Octets(range) => range.contains(&r.octets),
            FlowPredicate::ExportPort(port) => flow.export_port == *port,
            FlowPredicate::InputIf(ifindex) => r.input_if == *ifindex,
            FlowPredicate::Not(inner) => !inner.matches(flow),
        }
    }
}

/// A conjunctive flow filter (all predicates must match), built fluently.
///
/// # Examples
///
/// ```
/// use infilter_flowtools::{CollectedFlow, FlowFilter};
/// use infilter_netflow::FlowRecord;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let filter = FlowFilter::new()
///     .src_in("3.0.0.0/11".parse()?)
///     .dst_port(80..=80)
///     .protocol(6);
///
/// let hit = CollectedFlow {
///     export_port: 9001,
///     record: FlowRecord {
///         src_addr: "3.0.4.4".parse()?,
///         dst_port: 80,
///         protocol: 6,
///         ..FlowRecord::default()
///     },
/// };
/// assert!(filter.matches(&hit));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowFilter {
    predicates: Vec<FlowPredicate>,
}

impl FlowFilter {
    /// Creates a match-everything filter.
    pub fn new() -> FlowFilter {
        FlowFilter::default()
    }

    /// Adds an arbitrary predicate.
    pub fn and(mut self, predicate: FlowPredicate) -> FlowFilter {
        self.predicates.push(predicate);
        self
    }

    /// Requires the source inside `prefix`.
    pub fn src_in(self, prefix: Prefix) -> FlowFilter {
        self.and(FlowPredicate::SrcInPrefix(prefix))
    }

    /// Requires the destination inside `prefix`.
    pub fn dst_in(self, prefix: Prefix) -> FlowFilter {
        self.and(FlowPredicate::DstInPrefix(prefix))
    }

    /// Requires the protocol.
    pub fn protocol(self, proto: u8) -> FlowFilter {
        self.and(FlowPredicate::Protocol(proto))
    }

    /// Requires the destination port inside `range`.
    pub fn dst_port(self, range: RangeInclusive<u16>) -> FlowFilter {
        self.and(FlowPredicate::DstPort(range))
    }

    /// Requires the flow to start inside the window.
    pub fn started_in(self, range: RangeInclusive<u32>) -> FlowFilter {
        self.and(FlowPredicate::StartedIn(range))
    }

    /// Requires the export port.
    pub fn export_port(self, port: u16) -> FlowFilter {
        self.and(FlowPredicate::ExportPort(port))
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the filter matches everything.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Whether all predicates match `flow`.
    pub fn matches(&self, flow: &CollectedFlow) -> bool {
        self.predicates.iter().all(|p| p.matches(flow))
    }

    /// Filters a slice, keeping matches.
    pub fn apply<'a>(&self, flows: &'a [CollectedFlow]) -> Vec<&'a CollectedFlow> {
        flows.iter().filter(|f| self.matches(f)).collect()
    }
}

/// Convenience: the spoof-relevant filter the analysis deployment would
/// push down to flow-capture — flows towards the target network only.
pub fn towards_target(target: Prefix) -> FlowFilter {
    FlowFilter::new().dst_in(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infilter_netflow::FlowRecord;

    fn flow(src: &str, dst: &str, dst_port: u16, proto: u8, port: u16) -> CollectedFlow {
        CollectedFlow {
            export_port: port,
            record: FlowRecord {
                src_addr: src.parse().unwrap(),
                dst_addr: dst.parse().unwrap(),
                dst_port,
                protocol: proto,
                src_port: 40_000,
                packets: 10,
                octets: 5_000,
                first_ms: 1_000,
                last_ms: 2_000,
                input_if: 1,
                ..FlowRecord::default()
            },
        }
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = FlowFilter::new();
        assert!(f.is_empty());
        assert!(f.matches(&flow("1.2.3.4", "5.6.7.8", 80, 6, 9001)));
    }

    #[test]
    fn conjunction_requires_all() {
        let f = FlowFilter::new()
            .src_in("3.0.0.0/11".parse().unwrap())
            .dst_port(80..=80)
            .protocol(6);
        assert_eq!(f.len(), 3);
        assert!(f.matches(&flow("3.0.1.1", "96.1.0.2", 80, 6, 1)));
        assert!(!f.matches(&flow("4.0.1.1", "96.1.0.2", 80, 6, 1))); // wrong src
        assert!(!f.matches(&flow("3.0.1.1", "96.1.0.2", 443, 6, 1))); // wrong port
        assert!(!f.matches(&flow("3.0.1.1", "96.1.0.2", 80, 17, 1))); // wrong proto
    }

    #[test]
    fn negation_inverts() {
        let f = FlowFilter::new().and(FlowPredicate::Not(Box::new(FlowPredicate::Protocol(6))));
        assert!(!f.matches(&flow("1.1.1.1", "2.2.2.2", 80, 6, 1)));
        assert!(f.matches(&flow("1.1.1.1", "2.2.2.2", 53, 17, 1)));
    }

    #[test]
    fn ranges_and_identity_fields() {
        let flows = vec![
            flow("1.1.1.1", "96.1.0.1", 80, 6, 9001),
            flow("1.1.1.2", "96.1.0.2", 53, 17, 9002),
            flow("1.1.1.3", "8.8.8.8", 80, 6, 9001),
        ];
        let filtered = towards_target("96.1.0.0/16".parse().unwrap()).apply(&flows);
        assert_eq!(filtered.len(), 2);
        let filtered = FlowFilter::new().export_port(9002).apply(&flows);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].record.dst_port, 53);
        let filtered = FlowFilter::new().started_in(0..=500).apply(&flows);
        assert!(filtered.is_empty()); // flows start at 1000
    }

    #[test]
    fn packet_and_byte_bounds() {
        let f = FlowFilter::new()
            .and(FlowPredicate::Packets(1..=20))
            .and(FlowPredicate::Octets(4_000..=6_000));
        assert!(f.matches(&flow("1.1.1.1", "2.2.2.2", 80, 6, 1)));
        let g = FlowFilter::new().and(FlowPredicate::Packets(11..=20));
        assert!(!g.matches(&flow("1.1.1.1", "2.2.2.2", 80, 6, 1)));
    }
}
