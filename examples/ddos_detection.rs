//! DDoS detection: a TFN2K flood against one victim, run through the full
//! §6 testbed, with per-stage accounting of how the flood was caught.
//!
//! Run with `cargo run --release --example ddos_detection`.

use infilter::core::TracebackReport;
use infilter::experiments::{AttackPlacement, Testbed, TestbedConfig};

fn main() {
    // The standard testbed at 8 % attack volume, single ingress under
    // attack — TFN2K is the volumetric component of the attack mix.
    let cfg = TestbedConfig {
        attack_volume_pct: 8.0,
        placement: AttackPlacement::SinglePeer,
        normal_flows_per_peer: 1200,
        training_flows: 1000,
        seed: 99,
        ..TestbedConfig::default()
    };
    let bed = Testbed::new(cfg);
    let outcome = bed.run();

    println!("attack instances launched : {}", outcome.attack_instances);
    println!(
        "detected                  : {} ({:.1}%)",
        outcome.attacks_detected,
        outcome.detection_rate() * 100.0
    );
    println!(
        "false positives           : {} of {} normal flows ({:.2}%)",
        outcome.false_positives,
        outcome.normal_flows,
        outcome.false_positive_rate() * 100.0
    );
    println!(
        "mean detection latency    : {:.0} ms after attack start",
        outcome.mean_detection_latency_ms
    );

    println!("\nper attack kind:");
    for (kind, k) in &outcome.per_kind {
        let mark = if k.detected == k.launched {
            "ok  "
        } else {
            "MISS"
        };
        println!("  [{mark}] {kind:<14} {}/{}", k.detected, k.launched);
    }

    let m = &outcome.metrics;
    println!("\nhow the pipeline split the load:");
    println!(
        "  EIA fast path   : {} flows ({:?}/flow)",
        m.eia_match,
        m.fast_path.mean()
    );
    println!(
        "  suspects        : {} flows ({:?}/flow)",
        m.eia_suspect,
        m.suspect_path.mean()
    );
    println!("  scan detections : {}", m.scan_attacks);
    println!("  NNS detections  : {}", m.nns_attacks);
    println!("  forgiven        : {}", m.forgiven);

    // Traceback: re-run the analysis to collect the alerts and attribute
    // them to ingress points (every alert names its Peer AS / BR).
    let mut analyzer = bed.train();
    for lf in bed.generate_workload() {
        analyzer.process(lf.peer, &lf.record);
    }
    let report = TracebackReport::from_alerts(analyzer.alerts());
    println!("\ntraceback — attack activity per ingress:");
    print!("{}", report.render());
    assert_eq!(
        report.hottest_ingress(),
        Some(infilter::core::PeerId(1)),
        "all attacks entered via Peer AS1 in this scenario"
    );

    let tfn2k = outcome
        .per_kind
        .get("tfn2k")
        .expect("tfn2k is always in the attack mix");
    assert_eq!(
        tfn2k.detected, tfn2k.launched,
        "the volumetric flood must always be caught"
    );
}
