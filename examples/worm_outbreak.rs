//! Worm outbreak: a spoofed Slammer-style sweep replayed through the full
//! NetFlow path — Dagflow → wire datagrams → collector → Enhanced
//! InFilter — ending in IDMEF alerts.
//!
//! This is the paper's marquee stealthy case: single-packet spoofed UDP
//! flows that signature IDSes without a Slammer rule would miss entirely.
//!
//! Run with `cargo run --release --example worm_outbreak`.

use infilter::core::{AnalyzerConfig, EiaRegistry, PeerId, Trainer};
use infilter::dagflow::{eia_table, AddressMapper, Dagflow, DagflowConfig};
use infilter::flowtools::Collector;
use infilter::netflow::FlowRecord;
use infilter::nns::NnsParams;
use infilter::traffic::{AttackKind, NormalProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target_prefix: infilter::net::Prefix = "96.1.0.0/16".parse()?;
    let eia_blocks = eia_table(10, 100);

    // EIA sets straight from Table 3.
    let mut eia = EiaRegistry::new(3);
    for (i, blocks) in eia_blocks.iter().enumerate() {
        for b in blocks {
            eia.preload(PeerId(i as u16 + 1), b.prefix());
        }
    }

    // Train on a normal trace replayed by a dedicated Dagflow instance.
    let mut rng = StdRng::seed_from_u64(11);
    let training_trace = NormalProfile::default().generate(&mut rng, 800, 120_000);
    let trainer_dagflow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks.iter().flatten().copied()),
        target_prefix,
        export_port: 9000,
        input_if: 0,
        src_as: 0,
    });
    let training = trainer_dagflow.replay_records(&training_trace, 0);
    let cfg = AnalyzerConfig::builder()
        .nns(NnsParams {
            d: 0,
            m1: 2,
            m2: 10,
            m3: 3,
        })
        .bits_per_feature(32)
        .build()?;
    let mut analyzer = Trainer::new(cfg).train_enhanced(eia, &training)?;

    // The worm enters via Peer AS1, spoofing sources from the other nine
    // peers' address space (§6.3.1's attack placement).
    let worm = AttackKind::Slammer.generate(&mut rng, 4096);
    println!(
        "launching {}: {} single-packet UDP flows to port 1434\n",
        worm.kind,
        worm.trace.len()
    );
    let mut attack_dagflow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks.iter().skip(1).flatten().copied()),
        target_prefix,
        export_port: 9001,
        input_if: 1,
        src_as: 1,
    });

    // Full wire path: NetFlow v5 datagrams → collector → analyzer.
    let mut collector = Collector::new();
    let mut flagged = 0usize;
    for (port, datagram) in attack_dagflow.replay_datagrams(&worm.trace, 10_000) {
        let flows = collector.ingest(port, &datagram.encode())?;
        for cf in flows {
            let record: FlowRecord = cf.record;
            let verdict = analyzer.process(PeerId(record.input_if), &record);
            if verdict.is_attack() {
                flagged += 1;
            }
        }
    }

    println!("flows flagged        : {flagged}/{}", worm.trace.len());
    println!("scan-analysis attacks: {}", analyzer.metrics().scan_attacks);
    println!("nns attacks          : {}", analyzer.metrics().nns_attacks);
    let alerts = analyzer.drain_alerts();
    println!("IDMEF alerts emitted : {}", alerts.len());
    if let Some(first) = alerts.first() {
        println!("\nfirst alert:\n{}", first.to_xml());
    }
    assert!(flagged > 0, "the worm must not slip through");
    Ok(())
}
