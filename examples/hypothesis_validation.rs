//! The InFilter hypothesis validation (§3): traceroute last-hop stability
//! and BGP source-AS-set stability over a synthetic Internet.
//!
//! Run with `cargo run --release --example hypothesis_validation`.

use infilter::bgp::{BgpDump, BgpSimConfig, BgpValidation, PeerMapping};
use infilter::topology::InternetBuilder;
use infilter::traceroute::{AggregationLevel, ChangeStats, SimConfig, TracerouteSim};

fn main() {
    let internet = InternetBuilder::new(42).build();
    println!(
        "synthetic Internet: {} ASes, {} links, {} looking glasses, {} targets\n",
        internet.graph().as_count(),
        internet.graph().link_count(),
        internet.looking_glasses().len(),
        internet.targets().len()
    );

    // --- §3.1: traceroute campaign (30-minute samples for 24 hours). ---
    let mut sim = TracerouteSim::new(internet, SimConfig::default());
    let series = sim.campaign(0.5, 24.0);
    let stats = ChangeStats::from_series(series.values());
    println!("traceroute validation (24 h, 30-min period):");
    println!(
        "  samples      : {} ({} completed)",
        stats.samples, stats.completed
    );
    println!(
        "  raw change   : {:.2}%   (paper: 4.8%)",
        stats.change_fraction(AggregationLevel::Raw) * 100.0
    );
    println!(
        "  /24 smoothed : {:.2}%",
        stats.change_fraction(AggregationLevel::Subnet24) * 100.0
    );
    println!(
        "  FQDN smoothed: {:.2}%   (paper: 0.4%)\n",
        stats.change_fraction(AggregationLevel::Fqdn) * 100.0
    );

    // --- §3.2: BGP campaign with a peek at the raw artifact. ---
    let internet = InternetBuilder::new(42).build();
    let validation = BgpValidation::new(
        internet,
        BgpSimConfig {
            duration_h: 240.0, // 10 days keeps the example snappy
            ..BgpSimConfig::default()
        },
    );

    // The same `show ip bgp` text the paper scraped from Routeviews:
    let dump = validation.dump_at(0, 0.0);
    let rendered = dump.render();
    println!("show ip bgp (first rows of the snapshot artifact):");
    for line in rendered.lines().take(5) {
        println!("  {line}");
    }
    let reparsed = BgpDump::parse(&rendered).expect("round-trips");
    let target_addr = validation.internet().targets()[0].addr;
    let mapping = PeerMapping::from_dump(&reparsed, target_addr);
    println!(
        "\npeer-AS → source-AS mapping for target {target_addr}: {} peers, {} sources",
        mapping.peer_count(),
        mapping.source_count()
    );

    let report = validation.run();
    println!("\nBGP validation (10 days, 2-hour snapshots):");
    println!(
        "  avg source-AS set change: {:.2}%   (paper: 1.6%)",
        report.overall_avg_change * 100.0
    );
    println!(
        "  max source-AS set change: {:.2}%   (paper: 5%)",
        report.overall_max_change * 100.0
    );
    println!("\nboth studies support the InFilter hypothesis: the ingress point a");
    println!("source uses into a target network is stable once redundant links are");
    println!("smoothed away, so a sudden ingress shift is evidence of spoofing.");
}
