//! Router emulation: build NetFlow records the way a real border router
//! does — packet by packet through a flow cache with the v5 expiry rules —
//! then export, collect and analyse them.
//!
//! The paper's Dagflow skips the router ("without requiring generation of
//! the actual IP traffic"); this example keeps the packet-level path to
//! exercise the cache: idle timeout, active timeout, TCP teardown and
//! cache pressure all occur.
//!
//! Run with `cargo run --release --example router_emulation`.

use infilter::core::{AnalyzerConfig, EiaRegistry, PeerId, Trainer};
use infilter::netflow::{
    CacheConfig, Datagram, ExpiryReason, FlowCache, FlowKey, PacketObs, TCP_FIN, TCP_SYN,
};
use infilter::nns::NnsParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let mut cache = FlowCache::new(CacheConfig {
        idle_timeout_ms: 5_000,
        active_timeout_ms: 60_000,
        max_flows: 4_096,
    });

    // Synthesize packet arrivals: 300 short web sessions from expected
    // space plus one long-lived transfer and one spoofed single packet.
    let mut expired: Vec<(infilter::netflow::FlowRecord, ExpiryReason)> = Vec::new();
    for session in 0..300u32 {
        let key = FlowKey {
            src_addr: std::net::Ipv4Addr::from(0x0300_0000 + session),
            dst_addr: "96.1.0.20".parse()?,
            protocol: 6,
            src_port: 1024 + (session % 40_000) as u16,
            dst_port: 80,
            tos: 0,
            input_if: 1,
        };
        let start = session * 400;
        let packets = rng.gen_range(4..18);
        for p in 0..packets {
            let flags = if p == 0 {
                TCP_SYN
            } else if p == packets - 1 {
                TCP_FIN
            } else {
                0
            };
            expired.extend(cache.observe(PacketObs {
                key,
                bytes: rng.gen_range(60..1400),
                tcp_flags: flags,
                time_ms: start + p * 35,
            }));
        }
    }
    // The spoofed packet: a source from another peer's space.
    expired.extend(cache.observe(PacketObs {
        key: FlowKey {
            src_addr: "15.170.3.9".parse()?, // peer AS2 space
            dst_addr: "96.1.0.77".parse()?,
            protocol: 17,
            src_port: 53211,
            dst_port: 1434,
            tos: 0,
            input_if: 1,
        },
        bytes: 404,
        tcp_flags: 0,
        time_ms: 130_000,
    }));
    expired.extend(cache.flush(140_000));

    let mut by_reason: BTreeMap<String, usize> = BTreeMap::new();
    for (_, why) in &expired {
        *by_reason.entry(format!("{why:?}")).or_default() += 1;
    }
    println!("flows produced by the cache, by expiry reason:");
    for (why, n) in &by_reason {
        println!("  {why:<14} {n}");
    }

    // Export in v5 datagrams (30 records each), then analyse.
    let records: Vec<_> = expired.iter().map(|(r, _)| *r).collect();
    let mut datagram_count = 0;
    let mut decoded = Vec::new();
    for (i, chunk) in records.chunks(30).enumerate() {
        let dg = Datagram::new((i * 30) as u32, 140_000, chunk);
        decoded.extend(Datagram::decode(&dg.encode())?.records);
        datagram_count += 1;
    }
    println!(
        "\nexported {} records in {datagram_count} v5 datagrams",
        decoded.len()
    );

    let mut eia = EiaRegistry::new(3);
    eia.preload(PeerId(1), "3.0.0.0/11".parse()?);
    eia.preload(PeerId(2), "15.160.0.0/11".parse()?);
    let training: Vec<_> = decoded
        .iter()
        .filter(|r| r.dst_port == 80)
        .copied()
        .collect();
    let mut analyzer = Trainer::new(
        AnalyzerConfig::builder()
            .nns(NnsParams {
                d: 0,
                m1: 2,
                m2: 10,
                m3: 3,
            })
            .bits_per_feature(32)
            .build()?,
    )
    .train_enhanced(eia, &training)?;

    let mut attacks = 0;
    for r in &decoded {
        if analyzer.process(PeerId(r.input_if), r).is_attack() {
            attacks += 1;
        }
    }
    println!("flows flagged as attacks  : {attacks}");
    for alert in analyzer.drain_alerts() {
        println!("  -> {}", alert.classification());
        assert_eq!(alert.source, "15.170.3.9".parse::<std::net::Ipv4Addr>()?);
    }
    assert_eq!(attacks, 1, "exactly the spoofed packet should be flagged");
    Ok(())
}
