//! Quickstart: build EIA sets, train Enhanced InFilter on normal traffic,
//! and classify a few flows.
//!
//! Run with `cargo run --release --example quickstart`.

use infilter::core::{AnalyzerConfig, EiaRegistry, PeerId, Trainer};
use infilter::netflow::FlowRecord;
use infilter::nns::NnsParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Expected IP Address sets: which sources are expected at which
    //    ingress (here: two peer ASes with one /11 each, as in Figure 2).
    let mut eia = EiaRegistry::new(3);
    eia.preload(PeerId(1), "3.0.0.0/11".parse()?);
    eia.preload(PeerId(2), "3.32.0.0/11".parse()?);

    // 2. A "normal cluster" of training flows — ordinary web sessions.
    let mut rng = StdRng::seed_from_u64(7);
    let normal: Vec<FlowRecord> = (0..400)
        .map(|_| FlowRecord {
            src_addr: std::net::Ipv4Addr::from(0x0300_0000 + rng.gen_range(0..4096)),
            dst_addr: "96.1.0.20".parse().expect("static address"),
            dst_port: 80,
            protocol: 6,
            packets: rng.gen_range(6..24),
            octets: rng.gen_range(3_000..16_000),
            first_ms: 0,
            last_ms: rng.gen_range(300..2_000),
            ..FlowRecord::default()
        })
        .collect();

    // 3. Train the Enhanced InFilter pipeline (EIA → Scan Analysis → NNS).
    let cfg = AnalyzerConfig::builder()
        .nns(NnsParams {
            d: 0,
            m1: 2,
            m2: 10,
            m3: 3,
        })
        .bits_per_feature(32)
        .build()?;
    let mut analyzer = Trainer::new(cfg).train_enhanced(eia, &normal)?;

    // 4. Classify flows.
    let legal = FlowRecord {
        src_addr: "3.0.5.5".parse()?,
        ..normal[0]
    };
    println!(
        "legal flow at peer 1      → {:?}",
        analyzer.process(PeerId(1), &legal)
    );

    // A normal-looking flow arriving through the wrong peer (a genuine
    // route change): suspected, then forgiven by the NNS stage.
    let rerouted = FlowRecord {
        src_addr: "3.33.0.5".parse()?,
        ..normal[1]
    };
    println!(
        "rerouted flow at peer 1   → {:?}",
        analyzer.process(PeerId(1), &rerouted)
    );

    // A spoofed flood: wrong ingress AND anomalous statistics.
    let spoofed = FlowRecord {
        src_addr: "3.40.0.9".parse()?,
        packets: 150_000,
        octets: 90_000_000,
        first_ms: 0,
        last_ms: 1_000,
        ..normal[0]
    };
    println!(
        "spoofed flood at peer 1   → {:?}",
        analyzer.process(PeerId(1), &spoofed)
    );

    // 5. The attack produced an IDMEF alert with traceback attribution.
    for alert in analyzer.drain_alerts() {
        println!("\nIDMEF alert:\n{}", alert.to_xml());
    }
    println!("metrics: {:?}", analyzer.metrics());
    Ok(())
}
