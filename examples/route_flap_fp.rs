//! Route-change false positives: the same workload through Basic and
//! Enhanced InFilter, showing the enhanced analysis absorbing the false
//! positives that genuine routing changes cause (§6.3.3, Figure 19).
//!
//! Run with `cargo run --release --example route_flap_fp`.

use infilter::core::Mode;
use infilter::experiments::{Testbed, TestbedConfig};

fn main() {
    println!("route-change sensitivity: BI vs EI (8% attack volume)\n");
    println!(
        "{:<14} {:>14} {:>14} {:>12}",
        "route change", "BI false pos", "EI false pos", "reduction"
    );

    for change in [1usize, 2, 4, 8] {
        let run = |mode: Mode| {
            let cfg = TestbedConfig {
                mode,
                route_change_pct: change,
                attack_volume_pct: 8.0,
                normal_flows_per_peer: 1200,
                training_flows: 1000,
                seed: 31,
                ..TestbedConfig::default()
            };
            Testbed::new(cfg).run()
        };
        let bi = run(Mode::Basic);
        let ei = run(Mode::Enhanced);
        let reduction = if bi.false_positive_rate() > 0.0 {
            1.0 - ei.false_positive_rate() / bi.false_positive_rate()
        } else {
            0.0
        };
        println!(
            "{:<14} {:>13.2}% {:>13.2}% {:>11.1}%",
            format!("{change}%"),
            bi.false_positive_rate() * 100.0,
            ei.false_positive_rate() * 100.0,
            reduction * 100.0
        );
        assert!(
            ei.false_positive_rate() <= bi.false_positive_rate(),
            "the enhanced analysis must never raise the false positive rate"
        );
        // BI flags every suspect, so its detection stays ~perfect.
        assert!(bi.detection_rate() > 0.9);
    }

    println!("\nBasic InFilter cannot tell a route change from a spoofed source;");
    println!("Enhanced InFilter forgives suspects whose flow statistics match the");
    println!("normal cluster, trading a small detection loss for far fewer false");
    println!("positives — exactly the paper's Figure 19 contrast.");
}
