//! The paper's Figure 9 deployment, end to end over real sockets and
//! threads: per-BR UDP receivers feed a shared analysis module.

use std::sync::Arc;
use std::time::Duration;

use infilter::core::{
    AnalyzerConfig, ConcurrentAnalyzer, ConcurrentConfig, EiaRegistry, PeerId, TracebackReport,
    Trainer,
};
use infilter::dagflow::{eia_table, AddressMapper, Dagflow, DagflowConfig};
use infilter::flowtools::{UdpExporter, UdpReceiver};
use infilter::net::Prefix;
use infilter::nns::NnsParams;
use infilter::traffic::{AttackKind, NormalProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn figure9_deployment_over_udp_and_threads() {
    let target_prefix: Prefix = "96.1.0.0/16".parse().expect("static prefix");
    let eia_blocks = eia_table(4, 100);
    let mut eia = EiaRegistry::new(3);
    for (i, blocks) in eia_blocks.iter().enumerate() {
        for b in blocks {
            eia.preload(PeerId(i as u16 + 1), b.prefix());
        }
    }

    // Train once, share across receiver threads.
    let mut rng = StdRng::seed_from_u64(23);
    let training_trace = NormalProfile::default().generate(&mut rng, 400, 60_000);
    let trainer_flow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks.iter().flatten().copied()),
        target_prefix,
        export_port: 9000,
        input_if: 0,
        src_as: 0,
    });
    let analyzer = Trainer::new(
        AnalyzerConfig::builder()
            .nns(NnsParams {
                d: 0,
                m1: 2,
                m2: 8,
                m3: 2,
            })
            .bits_per_feature(16)
            .build()
            .expect("valid config"),
    )
    .train_enhanced(eia, &trainer_flow.replay_records(&training_trace, 0))
    .expect("training succeeds");
    let shared = Arc::new(ConcurrentAnalyzer::new(
        analyzer,
        ConcurrentConfig::default(),
    ));

    // One UDP receiver per emulated BR, each on its own thread.
    let mut receiver_threads = Vec::new();
    let mut dest_addrs = Vec::new();
    for peer in 1u16..=2 {
        let mut rx = UdpReceiver::bind(0).expect("bind receiver");
        dest_addrs.push(rx.local_addr().expect("addr"));
        let shared = shared.clone();
        receiver_threads.push(std::thread::spawn(move || {
            let flows = rx.drain(Duration::from_millis(600)).expect("drain");
            let mut processed = 0usize;
            for cf in flows {
                shared.process(PeerId(peer), &cf.record);
                processed += 1;
            }
            processed
        }));
    }

    // BR1: normal traffic from its own space. BR2: a spoofed host scan.
    let tx = UdpExporter::new().expect("exporter");
    let mut normal_flow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks[0].iter().copied()),
        target_prefix,
        export_port: 9001,
        input_if: 1,
        src_as: 1,
    });
    let trace = NormalProfile::default().generate(&mut rng, 120, 30_000);
    for (_, dg) in normal_flow.replay_datagrams(&trace, 0) {
        tx.send(dest_addrs[0], &dg).expect("send normal");
    }
    let mut attack_flow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks[0].iter().copied()), // foreign to BR2
        target_prefix,
        export_port: 9002,
        input_if: 2,
        src_as: 2,
    });
    let scan = AttackKind::HostScan.generate(&mut rng, 1024);
    for (_, dg) in attack_flow.replay_datagrams(&scan.trace, 0) {
        tx.send(dest_addrs[1], &dg).expect("send attack");
    }

    let processed: usize = receiver_threads
        .into_iter()
        .map(|h| h.join().expect("receiver thread"))
        .sum();
    assert_eq!(
        processed,
        120 + scan.trace.len(),
        "no datagrams lost on loopback"
    );

    let metrics = shared.metrics();
    assert_eq!(metrics.flows as usize, processed);
    assert!(metrics.attacks() > 0, "the spoofed scan must be flagged");

    // Traceback pins the activity on BR2.
    let alerts = shared.drain_alerts();
    let report = TracebackReport::from_alerts(&alerts);
    assert_eq!(report.hottest_ingress(), Some(PeerId(2)));
    assert!(
        report.ingress(PeerId(1)).is_none(),
        "no alerts for clean BR1"
    );
}
