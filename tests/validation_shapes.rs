//! Shape assertions over the §3 hypothesis-validation campaigns.

use infilter::bgp::{BgpSimConfig, BgpValidation};
use infilter::topology::InternetBuilder;
use infilter::traceroute::{
    stability_profile, AggregationLevel, ChangeStats, SimConfig, TracerouteSim,
};

fn small_internet(seed: u64) -> infilter::topology::Internet {
    InternetBuilder::new(seed)
        .tier1(3)
        .transit(12)
        .stubs(40)
        .build()
}

#[test]
fn aggregation_ladder_shrinks_the_change_rate() {
    let mut sim = TracerouteSim::new(small_internet(3), SimConfig::default());
    let series = sim.campaign(0.5, 24.0);
    let stats = ChangeStats::from_series(series.values());
    let raw = stats.change_fraction(AggregationLevel::Raw);
    let subnet = stats.change_fraction(AggregationLevel::Subnet24);
    let fqdn = stats.change_fraction(AggregationLevel::Fqdn);
    assert!(raw > 0.0, "load-shared bundles must show raw churn");
    assert!(subnet <= raw);
    assert!(fqdn <= subnet);
    assert!(
        fqdn < raw / 2.5,
        "FQDN smoothing must slash the raw rate: raw {raw:.4}, fqdn {fqdn:.4}"
    );
}

#[test]
fn longer_sampling_interval_sees_more_change_per_sample() {
    // The paper's 4-day/60-min run reports higher per-sample change than
    // the 24-hour/30-min run; reroute episodes accumulate per interval.
    let cfg = SimConfig {
        flip_rate_per_hour: 0.0,
        incomplete_prob: 0.0,
        ..SimConfig::default()
    };
    let mut fast = TracerouteSim::new(small_internet(3), cfg.clone());
    let fast_stats = ChangeStats::from_series(fast.campaign(0.5, 96.0).values());
    let mut slow = TracerouteSim::new(small_internet(3), cfg);
    let slow_stats = ChangeStats::from_series(slow.campaign(2.0, 96.0).values());
    assert!(
        slow_stats.change_fraction(AggregationLevel::Fqdn)
            >= fast_stats.change_fraction(AggregationLevel::Fqdn),
        "per-sample change should not shrink with a longer interval: \
         30-min {:.4} vs 2-hour {:.4}",
        fast_stats.change_fraction(AggregationLevel::Fqdn),
        slow_stats.change_fraction(AggregationLevel::Fqdn)
    );
}

#[test]
fn figure_1_profile_is_stable_near_the_target() {
    let mut sim = TracerouteSim::new(small_internet(7), SimConfig::default());
    let series = sim.campaign(0.5, 24.0);
    let profile = stability_profile(series.values());
    assert!(profile.len() >= 4);
    // The last AS-level hop (distances 0..2 cover target host, BR, peer
    // egress) must be far more stable than the most volatile mid-path hop.
    let near_target: f64 = profile
        .iter()
        .filter(|p| p.distance_from_target <= 2)
        .map(|p| p.change_rate)
        .fold(0.0, f64::max);
    let mid_path: f64 = profile
        .iter()
        .filter(|p| p.distance_from_target > 2)
        .map(|p| p.change_rate)
        .fold(0.0, f64::max);
    assert!(
        mid_path > near_target,
        "mid-path ({mid_path:.4}) should churn more than the last hop ({near_target:.4})"
    );
}

#[test]
fn bgp_change_grows_with_churn_rate() {
    let run = |rate| {
        let cfg = BgpSimConfig {
            duration_h: 240.0,
            link_fail_rate_per_hour: rate,
            missing_prob: 0.0,
            ..BgpSimConfig::default()
        };
        BgpValidation::new(small_internet(5), cfg).run()
    };
    let calm = run(0.0005);
    let stormy = run(0.02);
    assert!(
        stormy.overall_avg_change > calm.overall_avg_change,
        "more link churn must move more sources: calm {:.4} vs stormy {:.4}",
        calm.overall_avg_change,
        stormy.overall_avg_change
    );
    // Even the stormy Internet keeps the mapping mostly stable — the
    // InFilter hypothesis itself.
    assert!(stormy.overall_avg_change < 0.2);
}

#[test]
fn default_campaigns_land_near_paper_magnitudes() {
    // Wide tolerances: the claim is the order of magnitude, not the digit.
    let mut sim = TracerouteSim::new(InternetBuilder::new(42).build(), SimConfig::default());
    let stats = ChangeStats::from_series(sim.campaign(0.5, 24.0).values());
    let raw = stats.change_fraction(AggregationLevel::Raw);
    let fqdn = stats.change_fraction(AggregationLevel::Fqdn);
    assert!(
        (0.015..0.10).contains(&raw),
        "raw change {raw:.4} vs paper 4.8%"
    );
    assert!(
        (0.001..0.015).contains(&fqdn),
        "aggregated {fqdn:.4} vs paper 0.4%"
    );

    let report = BgpValidation::new(
        InternetBuilder::new(42).build(),
        BgpSimConfig {
            duration_h: 240.0,
            ..BgpSimConfig::default()
        },
    )
    .run();
    assert!(
        (0.002..0.06).contains(&report.overall_avg_change),
        "avg source-AS change {:.4} vs paper 1.6%",
        report.overall_avg_change
    );
    assert!(report.overall_max_change < 0.15);
}
