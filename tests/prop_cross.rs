//! Cross-crate property tests: wire formats, stores, encodings and EIA
//! invariants under arbitrary inputs.

use infilter::core::{EiaRegistry, PeerId};
use infilter::flowtools::{CollectedFlow, FlowStore};
use infilter::net::SubBlock;
use infilter::netflow::{Datagram, FlowRecord};
use infilter::nns::{FeatureSpec, UnaryEncoder};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
        (any::<u32>(), any::<u32>()),
        (any::<u8>(), any::<u8>(), any::<u16>(), any::<u16>()),
    )
        .prop_map(
            |(
                src,
                dst,
                sport,
                dport,
                proto,
                packets,
                octets,
                (first, last),
                (flags, tos, sas, das),
            )| {
                FlowRecord {
                    src_addr: src.into(),
                    dst_addr: dst.into(),
                    next_hop: (src ^ dst).into(),
                    input_if: sport % 64,
                    output_if: dport % 64,
                    packets,
                    octets,
                    first_ms: first,
                    last_ms: last,
                    src_port: sport,
                    dst_port: dport,
                    tcp_flags: flags,
                    protocol: proto,
                    tos,
                    src_as: sas,
                    dst_as: das,
                    src_mask: (sas % 33) as u8,
                    dst_mask: (das % 33) as u8,
                }
            },
        )
}

proptest! {
    #[test]
    fn netflow_datagram_round_trips(
        records in proptest::collection::vec(arb_record(), 0..30),
        seq in any::<u32>(),
        uptime in any::<u32>(),
    ) {
        let dg = Datagram::new(seq, uptime, &records);
        let decoded = Datagram::decode(&dg.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, dg);
    }

    #[test]
    fn truncated_datagrams_never_panic(
        records in proptest::collection::vec(arb_record(), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = Datagram::new(0, 0, &records).encode();
        let cut = cut.index(bytes.len());
        // Any truncation either errors or (cut == len) succeeds; no panic.
        let _ = Datagram::decode(&bytes[..cut]);
    }

    #[test]
    fn flow_store_round_trips(
        flows in proptest::collection::vec(
            (any::<u16>(), arb_record()).prop_map(|(port, record)| CollectedFlow {
                export_port: port,
                record,
            }),
            0..64,
        )
    ) {
        let mut buf = Vec::new();
        FlowStore::write(&mut buf, &flows).expect("in-memory write");
        prop_assert_eq!(FlowStore::read(&buf[..]).expect("read back"), flows);
    }

    #[test]
    fn unary_distance_is_monotone_in_value_distance(
        a in 0.0f64..1000.0,
        b in 0.0f64..1000.0,
        c in 0.0f64..1000.0,
    ) {
        let enc = UnaryEncoder::new(vec![FeatureSpec::new(0.0, 1000.0)], 64)
            .expect("valid encoder");
        let ea = enc.encode(&[a]);
        let eb = enc.encode(&[b]);
        let ec = enc.encode(&[c]);
        if (a - b).abs() <= (a - c).abs() {
            // Quantisation grants ±1 interval of slack.
            prop_assert!(ea.hamming(&eb) <= ea.hamming(&ec) + 1,
                "|{a}-{b}| <= |{a}-{c}| but d={} > d={}", ea.hamming(&eb), ea.hamming(&ec));
        }
    }

    #[test]
    fn eia_preloaded_blocks_always_match_their_peer(
        block in 0usize..1000,
        host in any::<u64>(),
    ) {
        let mut eia = EiaRegistry::new(0);
        for i in 0..10u16 {
            for b in 0..100usize {
                let sb = SubBlock::from_linear(i as usize * 100 + b).expect("in range");
                eia.preload(PeerId(i + 1), sb.prefix());
            }
        }
        let sb = SubBlock::from_linear(block).expect("in range");
        let addr = sb.prefix().nth(host);
        let home = PeerId((block / 100) as u16 + 1);
        prop_assert!(eia.classify(home, addr).is_match());
        // And it must mismatch everywhere else.
        let other = PeerId((home.0 % 10) + 1);
        if other != home {
            prop_assert!(!eia.classify(other, addr).is_match());
        }
    }

    #[test]
    fn eia_adoption_is_idempotent_and_localised(
        sightings in 3u32..20,
        host in any::<u64>(),
    ) {
        let mut eia = EiaRegistry::new(3);
        eia.preload(PeerId(1), "3.0.0.0/11".parse().expect("static prefix"));
        let foreign: infilter::net::Prefix = "9.0.0.0/11".parse().expect("static prefix");
        let addr = foreign.nth(host);
        for _ in 0..sightings {
            eia.record_sighting(PeerId(1), addr);
        }
        prop_assert!(eia.classify(PeerId(1), addr).is_match());
        prop_assert_eq!(eia.adopted_count(), 1, "re-sighting must not re-adopt");
        // Peer 1's own space is untouched.
        prop_assert!(eia.classify(PeerId(1), "3.0.0.1".parse().expect("static addr")).is_match());
    }
}
