//! Shape assertions over the §6 evaluation testbed — the qualitative
//! claims of Figures 15–19 at debug-friendly scale.

use infilter::core::Mode;
use infilter::experiments::{AttackPlacement, Testbed, TestbedConfig};

fn avg<F: Fn(u64) -> TestbedConfig>(seeds: &[u64], make: F) -> (f64, f64) {
    let mut det = 0.0;
    let mut fp = 0.0;
    for &s in seeds {
        let o = Testbed::new(make(s)).run();
        det += o.detection_rate();
        fp += o.false_positive_rate();
    }
    (det / seeds.len() as f64, fp / seeds.len() as f64)
}

#[test]
fn enhanced_infilter_detects_most_attacks_with_low_false_positives() {
    let (det, fp) = avg(&[11, 12], TestbedConfig::small);
    assert!(det >= 0.7, "EI detection {det:.2} (paper: ~0.83)");
    assert!(det < 1.0, "EI trades some detection for FP suppression");
    assert!(fp < 0.02, "EI false positives {fp:.4} (paper: ~0.0125)");
}

#[test]
fn basic_infilter_detects_everything_but_pays_in_false_positives() {
    let make = |s| TestbedConfig {
        mode: Mode::Basic,
        route_change_pct: 4,
        ..TestbedConfig::small(s)
    };
    let (det, fp) = avg(&[21, 22], make);
    assert!(det > 0.95, "BI detection {det:.2} (paper: ~1.0)");
    assert!(
        fp > 0.03,
        "BI FP under 4% route change should exceed 3%, got {fp:.4}"
    );
}

#[test]
fn enhanced_cuts_basic_false_positives_under_route_churn() {
    // Figure 19's contrast at 8% attack volume and 8% route change.
    let run = |mode| {
        avg(&[31, 32], |s| TestbedConfig {
            mode,
            route_change_pct: 8,
            attack_volume_pct: 8.0,
            ..TestbedConfig::small(s)
        })
    };
    let (bi_det, bi_fp) = run(Mode::Basic);
    let (ei_det, ei_fp) = run(Mode::Enhanced);
    assert!(
        ei_fp < bi_fp * 0.8,
        "EI must cut BI's FP substantially: BI {bi_fp:.4} vs EI {ei_fp:.4}"
    );
    assert!(bi_det >= ei_det, "BI flags everything it suspects");
    assert!(ei_det > 0.6, "EI detection under churn {ei_det:.2}");
}

#[test]
fn false_positives_grow_with_route_instability() {
    // Figures 17/18: FP is monotone-ish in the route change level.
    let fp_at = |change| {
        avg(&[41, 42], |s| TestbedConfig {
            route_change_pct: change,
            unexpected_source_fraction: 0.0,
            ..TestbedConfig::small(s)
        })
        .1
    };
    let low = fp_at(1);
    let high = fp_at(8);
    assert!(
        high > low * 2.0,
        "8% churn FP ({high:.4}) should far exceed 1% churn FP ({low:.4})"
    );
}

#[test]
fn stress_load_degrades_detection() {
    // Figure 15: ten attack sets vs one. Slow scans drown in the shared
    // suspect buffer under load.
    let run = |placement| {
        avg(&[51, 52], |s| TestbedConfig {
            placement,
            ..TestbedConfig::small(s)
        })
    };
    let (single_det, _) = run(AttackPlacement::SinglePeer);
    let (stress_det, _) = run(AttackPlacement::AllPeers);
    assert!(
        stress_det < single_det + 0.01,
        "stress detection {stress_det:.3} should not beat single-set {single_det:.3}"
    );
    assert!(
        stress_det > 0.5,
        "stress detection collapsed: {stress_det:.3}"
    );
}

#[test]
fn detection_latency_is_reported_for_detected_attacks() {
    let outcome = Testbed::new(TestbedConfig::small(61)).run();
    assert!(outcome.attacks_detected > 0);
    assert!(outcome.mean_detection_latency_ms >= 0.0);
    // Suspect-path work costs more than the EIA fast path.
    let m = &outcome.metrics;
    assert!(m.suspect_path.mean() > m.fast_path.mean());
}
