//! End-to-end integration: traffic generation → Dagflow replay → NetFlow
//! wire format → collector → flow store → Enhanced InFilter analysis.

use infilter::core::{AnalyzerConfig, EiaRegistry, PeerId, Trainer};
use infilter::dagflow::{eia_table, AddressMapper, Dagflow, DagflowConfig};
use infilter::flowtools::{CollectedFlow, Collector, FlowStore, GroupField, Report};
use infilter::net::Prefix;
use infilter::nns::NnsParams;
use infilter::traffic::{AttackKind, NormalProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_analyzer_config() -> AnalyzerConfig {
    AnalyzerConfig::builder()
        .nns(NnsParams {
            d: 0,
            m1: 2,
            m2: 8,
            m3: 2,
        })
        .bits_per_feature(16)
        .build()
        .expect("valid config")
}

#[test]
fn full_wire_path_detects_spoofed_worm_and_passes_legit_traffic() {
    let target_prefix: Prefix = "96.1.0.0/16".parse().expect("static prefix");
    let eia_blocks = eia_table(10, 100);
    let mut eia = EiaRegistry::new(3);
    for (i, blocks) in eia_blocks.iter().enumerate() {
        for b in blocks {
            eia.preload(PeerId(i as u16 + 1), b.prefix());
        }
    }

    // Train on a normal trace spanning the whole address plan.
    let mut rng = StdRng::seed_from_u64(5);
    let training_trace = NormalProfile::default().generate(&mut rng, 500, 60_000);
    let trainer_flow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks.iter().flatten().copied()),
        target_prefix,
        export_port: 9000,
        input_if: 0,
        src_as: 0,
    });
    let mut analyzer = Trainer::new(small_analyzer_config())
        .train_enhanced(eia, &trainer_flow.replay_records(&training_trace, 0))
        .expect("training succeeds");

    // Legit traffic from peer 3's own space, via the wire.
    let mut legit_flow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks[2].iter().copied()),
        target_prefix,
        export_port: 9003,
        input_if: 3,
        src_as: 3,
    });
    // Spoofed worm entering peer 1 with sources from everyone else's space.
    let mut attack_flow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks.iter().skip(1).flatten().copied()),
        target_prefix,
        export_port: 9001,
        input_if: 1,
        src_as: 1,
    });

    let legit_trace = NormalProfile::default().generate(&mut rng, 300, 60_000);
    let worm = AttackKind::Slammer.generate(&mut rng, 2048);

    let mut collector = Collector::new();
    let mut stream: Vec<CollectedFlow> = Vec::new();
    for (port, dg) in legit_flow
        .replay_datagrams(&legit_trace, 0)
        .into_iter()
        .chain(attack_flow.replay_datagrams(&worm.trace, 5_000))
    {
        stream.extend(
            collector
                .ingest(port, &dg.encode())
                .expect("valid datagrams"),
        );
    }
    assert_eq!(
        collector.stats(9003).expect("legit port seen").lost_flows,
        0
    );

    // Persist and reload through the binary flow store before analysis.
    let mut buf = Vec::new();
    FlowStore::write(&mut buf, &stream).expect("in-memory write");
    let stream = FlowStore::read(&buf[..]).expect("store round-trips");

    let mut legit_flagged = 0;
    let mut worm_flagged = 0;
    for cf in &stream {
        let verdict = analyzer.process(PeerId(cf.record.input_if), &cf.record);
        match cf.export_port {
            9003 if verdict.is_attack() => legit_flagged += 1,
            9001 if verdict.is_attack() => worm_flagged += 1,
            _ => {}
        }
    }
    assert_eq!(
        legit_flagged, 0,
        "legit traffic from its own space must pass"
    );
    assert!(worm_flagged > 0, "the spoofed worm must be flagged");
    assert!(
        !analyzer.alerts().is_empty(),
        "attacks must produce IDMEF alerts"
    );
    // Every alert names the worm's ingress and is well-formed XML-ish.
    for alert in analyzer.alerts() {
        assert_eq!(alert.ingress, PeerId(1));
        let xml = alert.to_xml();
        assert!(xml.contains("<idmef:Alert"));
        assert!(xml.contains("</idmef:IDMEF-Message>"));
    }

    // flow-report over the same stream groups by export port.
    let report = Report::generate(&stream, &[GroupField::ExportPort]);
    assert_eq!(report.rows().len(), 2);
}

#[test]
fn basic_and_enhanced_modes_agree_on_clean_traffic() {
    let eia_blocks = eia_table(4, 100);
    let make_eia = || {
        let mut eia = EiaRegistry::new(3);
        for (i, blocks) in eia_blocks.iter().enumerate() {
            for b in blocks {
                eia.preload(PeerId(i as u16 + 1), b.prefix());
            }
        }
        eia
    };
    let mut rng = StdRng::seed_from_u64(9);
    let trace = NormalProfile::default().generate(&mut rng, 400, 60_000);
    let dagflow = Dagflow::new(DagflowConfig {
        sources: AddressMapper::from_sub_blocks(eia_blocks[0].iter().copied()),
        target_prefix: "96.1.0.0/16".parse().expect("static prefix"),
        export_port: 9001,
        input_if: 1,
        src_as: 1,
    });
    let records = dagflow.replay_records(&trace, 0);

    let trainer = Trainer::new(small_analyzer_config());
    let mut bi = trainer.train_basic(make_eia());
    let mut ei = trainer
        .train_enhanced(make_eia(), &records)
        .expect("training succeeds");
    for r in &records {
        assert!(bi.process(PeerId(1), r).is_legal());
        assert!(ei.process(PeerId(1), r).is_legal());
    }
    assert_eq!(bi.metrics().attacks(), 0);
    assert_eq!(ei.metrics().attacks(), 0);
}
