//! Facade crate re-exporting the complete InFilter reproduction workspace.
//!
//! See the workspace `README.md` for the architecture and `DESIGN.md` for the
//! paper-to-module mapping. The individual subsystems live in their own
//! crates and are re-exported here under short module names so examples and
//! downstream users need a single dependency.

#![forbid(unsafe_code)]

pub use infilter_baselines as baselines;
pub use infilter_bgp as bgp;
pub use infilter_core as core;
pub use infilter_dagflow as dagflow;
pub use infilter_experiments as experiments;
pub use infilter_flowtools as flowtools;
pub use infilter_ingest as ingest;
pub use infilter_net as net;
pub use infilter_netflow as netflow;
pub use infilter_nns as nns;
pub use infilter_telemetry as telemetry;
pub use infilter_topology as topology;
pub use infilter_traceroute as traceroute;
pub use infilter_traffic as traffic;

/// One-stop surface: everything a collector or analysis deployment needs,
/// importable with `use infilter::prelude::*`.
pub mod prelude {
    pub use infilter_core::{
        Analyzer, AnalyzerConfig, AnalyzerConfigBuilder, AnalyzerMetrics, AttackStage,
        ConcurrentAnalyzer, ConcurrentConfig, ConfigError, Effort, EiaRegistry, EiaSnapshot,
        Engine, FlowDecision, IdmefAlert, Mode, PeerId, PipelineTelemetry, TelemetryConfig,
        Trainer, Verdict, METRIC_FAMILIES,
    };
    pub use infilter_netflow::{Datagram, FlowRecord};
    pub use infilter_nns::NnsParams;
}
